package core

// White-box scrubber tests: the round-robin cursor (tableIdx/segIdx) and
// tick() are package-private, and the two regressions pinned here are about
// exactly that cursor — an I/O-failing segment must not wedge it, and a
// crashed site must not terminate the loop for good.

import (
	"testing"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/faultdisk"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

func scrubDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int32},
	)
}

// newScrubSite opens one standalone worker site under dir with `tables`
// tables of two bulk-loaded heap segments each, pages on disk.
func newScrubSite(t *testing.T, dir string, tables int) *worker.Site {
	t.Helper()
	cat := catalog.New(0)
	cat.AddSite(1, "")
	w, err := worker.Open(worker.Config{
		Site: 1, Dir: dir, Protocol: txn.OptThreePC, Mode: worker.HARBOR,
		LockTimeout: time.Second, Catalog: cat,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	desc := scrubDesc()
	for id := int32(1); id <= int32(tables); id++ {
		if err := w.CreateTable(id, desc, 2); err != nil {
			t.Fatal(err)
		}
		tb, err := w.Mgr.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		for seg := 0; seg < 2; seg++ {
			batch := make([]tuple.Tuple, 8)
			for i := range batch {
				tp := tuple.MustMake(desc, tuple.VInt(int64(seg*100+i)), tuple.VInt(int64(i)))
				tp.SetInsTS(1)
				batch[i] = tp
			}
			if _, err := tb.Heap.BulkLoadSegment(batch); err != nil {
				t.Fatal(err)
			}
		}
	}
	return w
}

// TestScrubSkipsFailingSegmentAndAdvances pins the skip-and-advance fix: a
// segment whose pages return a persistent non-corruption I/O error (EIO via
// faultdisk) must be counted as skipped and the round-robin must move past
// it to the other tables — the old early return left segIdx in place, so
// one bad segment pinned the scrubber forever and every other table lost
// scrub coverage.
func TestScrubSkipsFailingSegmentAndAdvances(t *testing.T) {
	dir := t.TempDir()
	d := faultdisk.New(1)
	d.Register(dir, "scrubsite")
	d.Install()
	t.Cleanup(d.Uninstall)

	w := newScrubSite(t, dir, 2)
	s := &Scrubber{r: New(w, nil)}
	reg := w.Obs()
	pages := reg.Counter("storage.scrub.pages")
	skipped := reg.Counter("storage.scrub.skipped")

	// Healthy pass first: 2 tables × (2 segments + 1 table-advance tick).
	for i := 0; i < 6; i++ {
		s.tick()
	}
	if pages.Load() == 0 {
		t.Fatal("healthy pass verified no pages")
	}
	if skipped.Load() != 0 {
		t.Fatalf("healthy pass skipped %d segments, want 0", skipped.Load())
	}

	// Every read under the site now fails with EIO. One full rotation of
	// ticks must visit (and skip) all 4 segments across BOTH tables: the
	// cursor advances past trouble instead of wedging on the first segment.
	d.SetFailOps(dir, 1, faultdisk.ErrInjectedIO)
	base := pages.Load()
	for i := 0; i < 6; i++ {
		s.tick()
	}
	if got := skipped.Load(); got != 4 {
		t.Fatalf("EIO rotation skipped %d segments, want 4 (both tables visited)", got)
	}
	if pages.Load() != base {
		t.Fatal("EIO rotation must not count failed reads as verified pages")
	}

	// Trouble clears: the same cursor resumes verifying everything.
	d.SetFailOps(dir, 0, nil)
	for i := 0; i < 6; i++ {
		s.tick()
	}
	if pages.Load() <= base {
		t.Fatal("scrubbing did not resume after the EIO burst cleared")
	}
	if skipped.Load() != 4 {
		t.Fatalf("healthy resume skipped %d total, want the 4 from the burst", skipped.Load())
	}
}

// TestScrubberSurvivesCrashedSite pins the loop-exit fix: a scrubber that
// observes Site.Crashed() must idle, not return — the old code terminated
// the goroutine for good, so a scrubber racing a crash never resumed after
// recovery brought the site back, silently ending all scrub coverage.
func TestScrubberSurvivesCrashedSite(t *testing.T) {
	w := newScrubSite(t, t.TempDir(), 1)
	pages := w.Obs().Counter("storage.scrub.pages")

	s := New(w, nil).StartScrubber(2 * time.Millisecond)
	defer s.Stop()
	waitAbove := func(floor int64, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for pages.Load() <= floor {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for scrub progress %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitAbove(0, "before the crash")

	// Crash observed: ticks must stop but the loop must stay alive.
	w.SetCrashedForTest(true)
	time.Sleep(20 * time.Millisecond) // let in-flight ticks drain
	frozen := pages.Load()
	time.Sleep(30 * time.Millisecond)
	if got := pages.Load(); got != frozen {
		t.Fatalf("scrubbed %d pages while crashed, want none", got-frozen)
	}

	// Recovery brings the site back: the same scrubber resumes.
	w.SetCrashedForTest(false)
	waitAbove(frozen, "after the site recovered")
}
