// Background scrubbing: a low-rate periodic pass over the on-disk heap
// pages so media corruption is found proactively, not only when a query
// read happens to trip over it. The scrubber reuses the existing machinery
// end to end — ReadPageData's CRC trailer check quarantines a bad page, and
// RepairTable (the Phase 0 scrub entry) restores it from a buddy — so the
// loop itself only walks pages and decides pacing.
package core

import (
	"errors"
	"sync"
	"time"

	"harbor/internal/storage"
	"harbor/internal/worker"
)

// Scrubber is one site's background scrub loop. Each tick verifies the CRC
// trailers of one segment of one table (round-robin across tables), so the
// scan rate is bounded and the read amplification negligible; a full pass
// over the site takes (#segments × interval).
type Scrubber struct {
	r        *Recoverer
	interval time.Duration

	stop     chan struct{}
	wg       sync.WaitGroup
	tableIdx int
	segIdx   int
}

// StartScrubber begins background scrubbing with one segment verified per
// interval tick. Progress and findings land on the site's registry:
// storage.scrub.pages (trailers verified), storage.scrub.repairs (pages
// restored from a buddy after a confirmed corruption).
func (r *Recoverer) StartScrubber(interval time.Duration) *Scrubber {
	s := &Scrubber{r: r, interval: interval, stop: make(chan struct{})}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Stop halts the scrub loop and waits for an in-flight tick to finish.
func (s *Scrubber) Stop() {
	close(s.stop)
	s.wg.Wait()
}

func (s *Scrubber) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			// A crashed site has its files closed under the scrubber, so
			// ticking would only chase errors — but exiting for good here
			// meant a scrubber that merely RACED a crash observation never
			// resumed once recovery brought the site back, silently ending
			// all scrub coverage. Skip the tick and keep the loop alive;
			// Stop() remains the only way out.
			if s.r.Site.Crashed() {
				continue
			}
			s.tick()
		}
	}
}

// tick scrubs the next segment in round-robin order. Errors are swallowed:
// the scrubber must outlive transient conditions (a table mid-recovery, a
// file closed under it by a crash) and try again next tick.
func (s *Scrubber) tick() {
	ids := s.r.Site.Mgr.IDs()
	if len(ids) == 0 {
		return
	}
	s.tableIdx %= len(ids)
	table := ids[s.tableIdx]
	// An object that is not Ready belongs to the recovery driver: its pages
	// are being rewound and rewritten, and recovery's own Phase 0 scrub
	// covers it. Skip to the next table.
	if st, _ := s.r.Site.ObjectState(table); st != worker.ObjReady {
		s.tableIdx++
		s.segIdx = 0
		return
	}
	tb, err := s.r.Site.Mgr.Get(table)
	if err != nil {
		s.tableIdx++
		s.segIdx = 0
		return
	}
	segs := tb.Heap.AllSegments()
	if s.segIdx >= len(segs) {
		// Finished this table; move to the next.
		s.tableIdx++
		s.segIdx = 0
		return
	}
	reg := s.r.Site.Obs()
	corrupt := false
	for _, pno := range tb.Heap.SegmentPages(segs[s.segIdx]) {
		if _, err := tb.Heap.ReadPageData(pno); err == nil {
			reg.Counter("storage.scrub.pages").Inc()
			continue
		} else if !errors.Is(err, storage.ErrPageCorrupt) {
			// I/O trouble (file closed, EIO burst): skip the segment and
			// ADVANCE — returning with segIdx in place pinned the round-robin
			// on a persistently-failing segment forever, starving every other
			// table of scrub coverage. The skipped counter makes the blind
			// spot visible; the round-robin retries the segment next pass.
			reg.Counter("storage.scrub.skipped").Inc()
			s.segIdx++
			return
		}
		// A trailer mismatch here may be a scrub read racing a concurrent
		// pool flush of the same page (the two are not serialized), not
		// real corruption. Re-read once: a settled write passes the second
		// check and the quarantine is lifted; a repeat failure is genuine.
		time.Sleep(2 * time.Millisecond)
		if _, err := tb.Heap.ReadPageData(pno); err == nil {
			tb.Heap.ClearQuarantine(pno)
			reg.Counter("storage.scrub.pages").Inc()
			continue
		}
		reg.Counter("storage.scrub.pages").Inc()
		corrupt = true
	}
	s.segIdx++
	if !corrupt {
		return
	}
	// Confirmed corruption: restore the quarantined pages from a buddy via
	// the shared Phase 0 repair entry. ErrRepairDeferred (uncommitted data
	// in the segment) resolves itself — the read-path hook or a later pass
	// retries once the transaction settles.
	n, err := s.r.RepairTable(table)
	if err == nil {
		reg.Counter("storage.scrub.repairs").Add(int64(n))
	}
}
