package core

import (
	"fmt"
	"os"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/vfs"
	"harbor/internal/wire"
)

// phase3 runs §5.4: acquire table-granularity read locks on every recovery
// object at once, copy the remaining committed changes with ordinary
// (non-historical) SEE DELETED queries, announce "rec coming online" to the
// coordinator so pending transactions are joined (Figure 5-4), then release
// the remote locks. It returns the object's final consistent time. The
// opts select the caller-specific behavior: crash recovery (RecoverSite)
// records the per-object checkpoint and marks the whole object, migration
// marks only the transferred segment and flips placement under the locks.
func (r *engine) phase3(tb *storage.Table, rep catalog.Replica, hwm tuple.Timestamp, st *ObjectStats, survivor bool, opts catchupOpts) (tuple.Timestamp, error) {
	recTxn := r.ids.Next()

	// Recompute the plan against currently-live buddies. The final
	// survivor of a total outage has no buddies and nothing to fetch — it
	// proceeds straight to the §5.4.2 join with an empty plan.
	var plan []catalog.RecoverySource
	if !survivor {
		var err error
		plan, err = r.Cat.RecoveryPlan(rep.Table, rep.Range, r.Site.Cfg.Site, r.buddyLiveFor(rep.Table))
		if err != nil {
			return 0, err
		}
	}

	// ACQUIRE REMOTELY READ LOCK ON recovery_object — all of them, retrying
	// on deadlock timeouts until every lock is granted (§5.4.1).
	conns := make([]*comm.Conn, 0, len(plan))
	release := func() {
		for i, c := range conns {
			if c == nil {
				continue
			}
			_, _ = c.Call(&wire.Msg{Type: wire.MsgUnlockTable, Txn: recTxn, Table: plan[i].Table})
			_, _ = c.Call(&wire.Msg{Type: wire.MsgEndRead, Txn: recTxn})
			c.Close()
		}
		conns = nil
	}
	for attempt := 0; ; attempt++ {
		ok := true
		for _, src := range plan {
			addr, found := r.Cat.SiteAddr(src.Buddy)
			if !found {
				release()
				return 0, fmt.Errorf("core: no address for buddy %d", src.Buddy)
			}
			c, err := comm.Dial(addr)
			if err != nil {
				release()
				return 0, fmt.Errorf("%w: %v", errBuddyFailed, err)
			}
			if err := c.Send(&wire.Msg{Type: wire.MsgLockTable, Txn: recTxn, Table: src.Table}); err != nil {
				c.Close()
				release()
				return 0, fmt.Errorf("%w: %v", errBuddyFailed, err)
			}
			resp, err := c.Recv()
			if err != nil {
				c.Close()
				release()
				return 0, fmt.Errorf("%w: %v", errBuddyFailed, err)
			}
			if resp.Type != wire.MsgOK {
				// Lock timeout (possible deadlock, §5.4.1): drop every lock
				// acquired so far, back off, and retry the whole set. "Site
				// S retries until it succeeds in acquiring all of the
				// locks."
				c.Close()
				ok = false
				break
			}
			conns = append(conns, c)
		}
		if ok {
			break
		}
		release()
		if attempt > 50 {
			return 0, fmt.Errorf("core: could not acquire recovery locks for table %d", rep.Table)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer release()

	// Copy deletions after the HWM, then insertions after the HWM, with
	// plain (locked-world) SEE DELETED scans. The uncommitted-insertion
	// exclusion of §5.4.1 is enforced by the scan's visibility mode.
	for _, src := range plan {
		du, di, nDel, nIns, err := r.copyWindow(tb, src, hwm, 0, false, recTxn)
		_ = du
		_ = di
		st.Phase3Deletes += nDel
		st.Phase3Inserts += nIns
		if err != nil {
			return 0, err
		}
	}

	// The object now reflects every committed change; fix its final time
	// while the locks still exclude new rec-affecting commits.
	finalT, err := r.coordinatorHWM()
	if err != nil {
		return 0, err
	}
	if err := r.flushObject(tb); err != nil {
		return 0, err
	}
	if opts.writeObjCkpt {
		if err := storage.WriteCheckpointFile(storage.ObjectCheckpointPath(r.Site.Cfg.Dir, rep.Table), finalT); err != nil {
			return 0, err
		}
	}

	// The locked copy has drained and is durable: every segment's contents
	// now equal a healthy replica's at finalT, and the buddy table locks
	// still exclude new commits to this table. Advance every segment's
	// horizon to finalT while still in Catchup — from here the worker serves
	// not just covered historical reads but *current* reads whose
	// coordinator-assigned start timestamp is ≤ finalT, shaving the
	// object-online round trip off current-read MTTR.
	opts.mark(finalT)

	// Migration flips placement here, while the donor table locks still
	// exclude commits: a transaction that committed before the flip never
	// needed this replica, one that commits after it sees the new placement
	// (directly in its update set or via the object-online replay below).
	if opts.underLock != nil {
		if err := opts.underLock(finalT); err != nil {
			return 0, err
		}
	}

	// Figure 5-4: announce to the coordinator; it replays the queued
	// update requests of every relevant pending transaction into this
	// worker's server, then answers "all done".
	coordAddr, ok := r.Cat.SiteAddr(r.Cat.Coordinator())
	if !ok {
		return 0, fmt.Errorf("core: coordinator address unknown")
	}
	cc, err := comm.Dial(coordAddr)
	if err != nil {
		return 0, err
	}
	resp, err := cc.Call(&wire.Msg{
		Type: wire.MsgObjectOnline, Site: int32(r.Site.Cfg.Site), Table: rep.Table,
	})
	cc.Close()
	if err != nil {
		return 0, err
	}
	if resp.Type != wire.MsgAllDone {
		return 0, fmt.Errorf("core: coordinator answered %v to object-online", resp.Type)
	}

	// RELEASE REMOTELY LOCK ... — the deferred release() does it; rec on S
	// is then fully online (§5.4.2).
	return finalT, nil
}

func osRemove(path string) error      { return vfs.Remove(path) }
func errorsIsNotExist(err error) bool { return os.IsNotExist(err) }
