// Package core implements HARBOR's recovery algorithm (Chapter 5 of the
// thesis) — the primary contribution of the paper. A crashed worker site
// revives each of its database objects in three phases:
//
//	Phase 1  restore local state to the last checkpoint: physically delete
//	         every tuple inserted after the checkpoint or left uncommitted,
//	         and undelete every tuple deleted after the checkpoint (§5.2);
//	Phase 2  catch up to a recent high water mark by running lock-free
//	         SEE DELETED HISTORICAL queries against remote recovery buddies,
//	         copying missing deletion timestamps and missing tuples (§5.3);
//	Phase 3  catch up to the current time under table-granularity read
//	         locks on the recovery objects, then join pending transactions
//	         through the coordinator and come online (§5.4).
//
// Objects (and whole sites) recover in parallel, each at its own pace, with
// per-object checkpoints so that failures during recovery resume instead of
// restarting (§5.3, §5.5). Buddy failures trigger a replan against the
// remaining replicas (§5.5.2).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/expr"
	"harbor/internal/obs"
	"harbor/internal/page"
	"harbor/internal/retry"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// ObjectStats decomposes one object's recovery (Figure 6-6).
type ObjectStats struct {
	Table int32

	Phase1Deleted   int // tuples physically removed in Phase 1
	Phase1Undeleted int // deletion stamps reverted in Phase 1
	Phase2Deletes   int // deletion timestamps copied in Phase 2
	Phase2Inserts   int // tuples copied in Phase 2
	Phase3Deletes   int
	Phase3Inserts   int
	Rounds          int // Phase 2 repetitions

	Phase1       time.Duration
	Phase2Update time.Duration // Phase 2's SELECT + UPDATE (deletions)
	Phase2Insert time.Duration // Phase 2's SELECT + INSERT (insertions)
	Phase3       time.Duration
	Total        time.Duration
}

// SiteStats aggregates a site's recovery.
type SiteStats struct {
	Objects []ObjectStats
	Total   time.Duration
}

// Options tune the recovery run.
type Options struct {
	// Parallel recovers objects concurrently (§5.1); serial otherwise.
	Parallel bool
	// Concurrency bounds the number of objects recovering at once when
	// Parallel is set (0 = min(4, object count)). Objects beyond the bound
	// wait in the priority queue, where a fault-in can still reorder them.
	Concurrency int
	// RepeatThreshold re-runs Phase 2 while the coordinator's HWM has
	// advanced by more than this many timestamps since the last round
	// (§5.3). Zero uses a sensible default.
	RepeatThreshold int64
	// MaxRounds bounds Phase 2 repetitions.
	MaxRounds int
	// Retries bounds whole-object restarts after buddy failures (§5.5.2).
	Retries int
	// DisablePruning turns off the §4.2 segment-timestamp pruning on every
	// recovery scan, local and remote — the ablation that quantifies what
	// the segment architecture buys (compare Figure 6-5's linear-in-
	// segments cost against scanning the whole table every time).
	DisablePruning bool
	// TupleAtATime requests legacy per-tuple framing on the remote recovery
	// scans instead of batch frames — the ablation behind the batched-
	// pipeline benchmark.
	TupleAtATime bool
	// RetryBackoff paces the §5.5.2 replan-retries: capped, jittered
	// exponential sleeps between attempts so a flapping buddy doesn't turn
	// the loop into a hot spin. Zero uses a sensible default; set Base < 0
	// via a custom Backoff to disable (tests).
	RetryBackoff *retry.Backoff
	// SegmentShards is how many key-range segments each object's recovery
	// state is tracked at (boundaries are quantiles of the object's local
	// key distribution). More shards means a faulted-in hot range becomes
	// servable after copying less of its table; each shard costs one extra
	// flush per Phase 2 round. 0 uses a sensible default.
	SegmentShards int
}

func (o Options) withDefaults() Options {
	if o.RepeatThreshold == 0 {
		o.RepeatThreshold = 64
	}
	if o.SegmentShards == 0 {
		o.SegmentShards = 8
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 4
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.RetryBackoff == nil {
		o.RetryBackoff = &retry.Backoff{Base: 25 * time.Millisecond, Max: 400 * time.Millisecond}
	}
	return o
}

// Recoverer drives HARBOR recovery for one rebooted worker site. It is one
// of the two callers of the segment-transfer engine (see transfer.go); the
// other is Migrate. All transfer-level machinery — window copies, remote
// streams, buddy liveness, locked catch-up — lives on the embedded engine
// and is shared verbatim between the two.
type Recoverer struct {
	*engine
}

// New builds a Recoverer.
func New(site *worker.Site, cat *catalog.Catalog) *Recoverer {
	return &Recoverer{engine: newEngine(site, cat)}
}

// noteHotRange records a faulted-in key range for segment prioritization.
// A full-range fault-in carries no locality information and is dropped —
// promote() already handles whole-object priority.
func (r *engine) noteHotRange(table int32, rng expr.KeyRange) {
	if rng == expr.FullKeyRange() {
		return
	}
	r.hotMu.Lock()
	defer r.hotMu.Unlock()
	for _, h := range r.hotRanges[table] {
		if h == rng {
			return
		}
	}
	r.hotRanges[table] = append(r.hotRanges[table], rng)
}

// nextSeg elects the next segment Phase 2 should copy: the first unvisited
// segment a refused read has faulted in, else the first unvisited segment in
// key order. Consulted before every segment copy rather than once per round,
// so a fault-in that arrives mid-round reorders the remainder of the round
// immediately.
func (r *engine) nextSeg(table int32, segs []worker.SegmentStatus, visited []bool) int {
	r.hotMu.Lock()
	hot := append([]expr.KeyRange(nil), r.hotRanges[table]...)
	r.hotMu.Unlock()
	first := -1
	for i := range segs {
		if visited[i] {
			continue
		}
		if first < 0 {
			first = i
		}
		for _, h := range hot {
			if !segs[i].Range.Intersect(h).Empty() {
				return i
			}
		}
	}
	return first
}

// RecoverSite revives every database object on the site, then brings the
// site's global checkpoint forward and re-enables normal checkpointing.
func (r *Recoverer) RecoverSite(opt Options) (*SiteStats, error) {
	opt = opt.withDefaults()
	r.noPrune = opt.DisablePruning
	r.tupleAtATime = opt.TupleAtATime
	start := time.Now()
	r.Site.PauseCheckpoints() // §5.2: disable scheduled checkpoints
	defer r.Site.ResumeCheckpoints()

	// The objects to recover are this site's replicas per the catalog;
	// local tables missing entirely (disk wiped) are created empty.
	reps := r.Cat.ReplicasOn(r.Site.Cfg.Site)
	if len(reps) == 0 {
		r.Site.SetRecovered() // nothing replicated here; trivially caught up
		return &SiteStats{Total: time.Since(start)}, nil
	}
	for _, rep := range reps {
		if !r.Site.Mgr.Has(rep.Table) {
			spec, ok := r.Cat.Table(rep.Table)
			if !ok {
				return nil, fmt.Errorf("core: replica of unknown table %d", rep.Table)
			}
			segPages := rep.SegPages
			if segPages == 0 {
				segPages = spec.SegPages
			}
			if err := r.Site.CreateTable(rep.Table, spec.Desc, segPages); err != nil {
				return nil, err
			}
		}
	}

	// Demote every replica object before touching any: whatever this
	// incarnation held, it is about to be rewound, and reads must not land
	// on a half-rewound object. Each object transitions forward through the
	// state machine independently as its own recovery progresses, becoming
	// servable again the moment its history covers the read — not when the
	// last object catches up. Demotion also carves each object into
	// key-range segments at quantiles of its local key distribution:
	// Phase 2 advances the segments independently, so a faulted-in hot
	// range serves after copying only its own shard of the table.
	for _, rep := range reps {
		var bounds []int64
		if tb, err := r.Site.Mgr.Get(rep.Table); err == nil {
			bounds = tb.Index.Quantiles(opt.SegmentShards)
		}
		r.Site.SetObjectSegments(rep.Table, bounds, worker.ObjNeedsRecovery, 0)
	}

	// Placement hygiene for a crashed donor: a range that migrated away
	// while this site was down (or whose post-move purge never ran) leaves
	// rows the catalog no longer assigns here, and recovery would revive
	// them into reads. Purge everything outside the union of this site's
	// replica ranges per table. With full coverage — the common case — the
	// complement is empty and nothing is touched.
	heldByTable := map[int32][]expr.KeyRange{}
	for _, rep := range reps {
		heldByTable[rep.Table] = append(heldByTable[rep.Table], rep.Range)
	}
	for table, held := range heldByTable {
		for _, gap := range uncoveredRanges(expr.FullKeyRange(), held) {
			if _, err := r.Site.PurgeRange(table, gap); err != nil {
				return nil, err
			}
			r.Site.MarkRangePurged(table, gap)
		}
	}

	stats := &SiteStats{Objects: make([]ObjectStats, len(reps))}
	finalTs := make([]tuple.Timestamp, len(reps))
	runOne := func(i int) error {
		var err error
		var os ObjectStats
		var ft tuple.Timestamp
		for attempt := 0; attempt <= opt.Retries; attempt++ {
			os, ft, err = r.recoverObject(reps[i], opt)
			if err == nil || (!errors.Is(err, errBuddyFailed) &&
				!errors.Is(err, storage.ErrPageCorrupt) &&
				!errors.Is(err, wire.ErrRemoteCorrupt)) {
				break
			}
			// A LOCAL page found corrupt mid-phase was quarantined by the
			// failed read; the retry's Phase 0 scrub repairs it before going
			// again. A REMOTE corrupt page means the buddy tripped its own
			// CRC check serving our scan — that read armed the buddy's
			// background repair-from-buddy, so backing off and retrying
			// meets a healed source. §5.5.2: buddy died; back off, then
			// replan against the remaining replicas (a flapping buddy must
			// not hot-loop us).
			if attempt < opt.Retries {
				opt.RetryBackoff.Sleep(attempt)
			}
		}
		stats.Objects[i] = os
		finalTs[i] = ft
		if err != nil {
			// Whatever phase failed, the object is not servable; the
			// per-object checkpoint file keeps the durable resume point.
			r.Site.SetObjectState(reps[i].Table, worker.ObjNeedsRecovery, 0)
		}
		return err
	}

	// Objects recover through a priority queue, hottest first: the per-table
	// read counters say which objects queries actually touch, and recovering
	// those first minimizes time-to-first-query. An incoming query or
	// recovery scan that lands on a still-queued object promotes it to the
	// front via the site's fault-in hook.
	sched := newObjSched(reps, r.Site.Obs())
	r.Site.SetFaultInHook(func(table int32, rng expr.KeyRange) {
		r.noteHotRange(table, rng)
		sched.promote(table)
	})
	defer r.Site.SetFaultInHook(nil)

	workers := 1
	if opt.Parallel {
		workers = opt.Concurrency
		if workers <= 0 {
			workers = 4
		}
		if workers > len(reps) {
			workers = len(reps)
		}
	}
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := sched.next()
				if !ok {
					return
				}
				errs[i] = runOne(i)
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		// Partial failure: objects that DID complete stay Ready and keep
		// serving — per-object recovery means one unreachable buddy no
		// longer takes the whole site's progress down with it. The joined
		// error reports every failed object, not just the first.
		return nil, err
	}

	// All objects online: resume the single global checkpoint (§5.3) at
	// the minimum of the per-object checkpoints, then drop the per-object
	// files.
	minT := finalTs[0]
	for _, t := range finalTs[1:] {
		if t < minT {
			minT = t
		}
	}
	r.Site.SeedAppliedTS(minT)
	if err := storage.WriteCheckpointFile(storage.CheckpointPath(r.Site.Cfg.Dir), minT); err != nil {
		return nil, err
	}
	for _, rep := range reps {
		_ = removeIfExists(storage.ObjectCheckpointPath(r.Site.Cfg.Dir, rep.Table))
	}
	// Every replica is caught up through its recovery HWM: the site is a
	// legitimate recovery source again (ready flag on pings, recovery scans
	// served).
	r.Site.SetRecovered()
	stats.Total = time.Since(start)
	return stats, nil
}

// objSched is the per-object recovery queue: replica indices ordered by
// read hotness (the worker.table.reads{table=N} counters), popped by the
// recovery workers, with promote() moving a still-queued object to the
// front when a query faults it in.
type objSched struct {
	mu      sync.Mutex
	pending []int         // rep indices awaiting recovery, front = next
	idxOf   map[int32]int // table -> rep index
}

func newObjSched(reps []catalog.Replica, reg *obs.Registry) *objSched {
	hot := func(table int32) int64 {
		return reg.Counter(obs.Name("worker.table.reads", "table", strconv.Itoa(int(table)))).Load()
	}
	s := &objSched{
		pending: make([]int, len(reps)),
		idxOf:   make(map[int32]int, len(reps)),
	}
	for i, rep := range reps {
		s.pending[i] = i
		s.idxOf[rep.Table] = i
	}
	sort.SliceStable(s.pending, func(a, b int) bool {
		return hot(reps[s.pending[a]].Table) > hot(reps[s.pending[b]].Table)
	})
	return s
}

// next pops the highest-priority pending object (false when drained).
func (s *objSched) next() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return 0, false
	}
	i := s.pending[0]
	s.pending = s.pending[1:]
	return i, true
}

// promote moves table's object to the front of the queue if it is still
// pending (no-op once recovery of the object has started or finished).
func (s *objSched) promote(table int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	want, ok := s.idxOf[table]
	if !ok {
		return
	}
	for j, i := range s.pending {
		if i == want {
			copy(s.pending[1:j+1], s.pending[:j])
			s.pending[0] = i
			return
		}
	}
}

// errBuddyFailed marks a recovery-buddy connection failure (§5.5.2). It is
// the retryable class: RecoverSite replans against the remaining replicas.
var errBuddyFailed = errors.New("core: recovery buddy failed")

// errLocalApply marks a failure applying copied state to the local replica
// (page I/O, schema mismatch, full heap). Unlike errBuddyFailed it must NOT
// trigger a buddy replan — the buddy sent good data and a different buddy
// would fail the same way. The recovery run aborts instead.
var errLocalApply = errors.New("core: local apply failed during recovery")

// recoverObject runs the three phases for one replica. Progress is mirrored
// into the site's metrics registry (recovery.* counters) and its tracer: the
// whole object recovery runs under one trace id from the reserved recovery
// band, so `?txn=<id>` on /debug/harbor replays the phase timeline.
func (r *Recoverer) recoverObject(rep catalog.Replica, opt Options) (ObjectStats, tuple.Timestamp, error) {
	st := ObjectStats{Table: rep.Table}
	t0 := time.Now()
	reg, tr := r.Site.Obs(), r.Site.Trace()
	traceID := int64(r.ids.Next())
	tr.Recordf(traceID, obs.EvRecovery, "start table=%d", rep.Table)
	tb, err := r.Site.Mgr.Get(rep.Table)
	if err != nil {
		return st, 0, err
	}

	// The starting checkpoint: the newer of the global site checkpoint and
	// this object's recovery checkpoint (§5.3's finer-granularity rule).
	ckpt, err := storage.ReadCheckpointFile(storage.CheckpointPath(r.Site.Cfg.Dir))
	if err != nil {
		return st, 0, err
	}
	if objCkpt, err := storage.ReadCheckpointFile(storage.ObjectCheckpointPath(r.Site.Cfg.Dir, rep.Table)); err == nil && objCkpt > ckpt {
		ckpt = objCkpt
	}

	// §5.5 total outage: when every replica of the table left the update
	// set, the coordinator names the last one out the "final survivor" —
	// commits need a live replica, so none can postdate its departure and
	// its local state is complete. If that is us, rewinding to the
	// checkpoint would destroy committed tuples no buddy can restore:
	// Phase 1 instead only discards uncommitted debris, and Phases 2–3 run
	// against an empty buddy plan (there is nothing newer to fetch).
	survivor := r.selfIsFinalSurvivor(rep.Table)

	// ---- Phase 0: scrub quarantined pages (torn-page repair) ----
	// Pages whose CRC trailer failed verification are restored from a buddy
	// before Phase 1 touches them, capped at the checkpoint: Phase 1's
	// rewind and Phase 2's window copy rebuild everything newer anyway.
	r.Site.SetObjectState(rep.Table, worker.ObjScrubbing, 0)
	if n, err := r.repairTable(tb, rep, ckpt, survivor); err != nil {
		return st, 0, err
	} else if n > 0 {
		tr.Recordf(traceID, obs.EvRecovery, "phase0 repaired %d quarantined pages table=%d", n, rep.Table)
	}

	// ---- Phase 1: restore local state to the checkpoint (§5.2) ----
	p1 := time.Now()
	del, undel, err := r.phase1(tb, ckpt, opt.DisablePruning, survivor)
	if err != nil {
		return st, 0, err
	}
	st.Phase1Deleted, st.Phase1Undeleted = del, undel
	st.Phase1 = time.Since(p1)
	reg.Counter("recovery.phase1.deleted").Add(int64(del))
	reg.Counter("recovery.phase1.undeleted").Add(int64(undel))
	reg.Histogram("recovery.phase1.ns").Observe(st.Phase1.Nanoseconds())
	tr.Recordf(traceID, obs.EvRecovery,
		"phase1 done table=%d deleted=%d undeleted=%d survivor=%v", rep.Table, del, undel, survivor)

	// The rewound object IS the historical snapshot at its checkpoint:
	// everything Phase 2/3 adds from here carries an insertion (or
	// deletion) time above the copied horizon, so historical reads asOf ≤
	// copiedThrough are byte-correct from this point on and the object
	// starts serving them (time-to-first-query), long before full catch-up.
	r.Site.SetObjectState(rep.Table, worker.ObjHistoricalCopy, ckpt)

	// ---- Phase 2: lock-free historical catch-up (§5.3), per segment ----
	// Each round copies the window (cur, hwm] one segment at a time,
	// flushing and advancing that segment's servable horizon before moving
	// to the next — with faulted-in segments first, the read that is
	// actually waiting serves after a fraction of the table's copy work.
	// Within a round the segments' horizons diverge transiently; the round
	// ends with every segment at hwm, so the resume point (the per-object
	// checkpoint, written once the whole round is durable) stays scalar, and
	// an interrupted round is re-rewound by the next incarnation's Phase 1.
	segs := r.Site.ObjectSegments(rep.Table)
	cur := ckpt
	for round := 0; round < opt.MaxRounds; round++ {
		hwm, err := r.coordinatorHWM()
		if err != nil {
			return st, 0, err
		}
		if hwm <= cur || (round > 0 && hwm-cur <= opt.RepeatThreshold) {
			break
		}
		st.Rounds++
		buddies := 0
		// The next segment is re-elected after every copy, not frozen at
		// round start: a read refused mid-round faults its range in and the
		// very next pick honors it, instead of waiting a whole round.
		visited := make([]bool, len(segs))
		for done := 0; done < len(segs); done++ {
			si := r.nextSeg(rep.Table, segs, visited)
			visited[si] = true
			target := segs[si].Range.Intersect(rep.Range)
			var plan []catalog.RecoverySource
			if !survivor {
				plan, err = r.Cat.RecoveryPlan(rep.Table, target, r.Site.Cfg.Site, r.buddyLiveFor(rep.Table))
				if err != nil {
					return st, 0, err
				}
			}
			buddies += len(plan)
			for _, src := range plan {
				du, di, nDel, nIns, err := r.copyWindow(tb, src, cur, hwm, true, 0)
				st.Phase2Update += du
				st.Phase2Insert += di
				st.Phase2Deletes += nDel
				st.Phase2Inserts += nIns
				reg.Counter("recovery.phase2.tuples").Add(int64(nDel + nIns))
				if err != nil {
					return st, 0, err
				}
			}
			// This segment's window is durably applied: advance its servable
			// horizon independently of the segments still waiting.
			if err := r.flushObject(tb); err != nil {
				return st, 0, err
			}
			r.Site.SetSegmentState(rep.Table, segs[si].Range, worker.ObjHistoricalCopy, hwm)
		}
		reg.Counter("recovery.phase2.rounds").Inc()
		tr.Recordf(traceID, obs.EvRecovery,
			"phase2 round=%d table=%d window=(%d,%d] segments=%d buddies=%d", st.Rounds, rep.Table, cur, hwm, len(segs), buddies)
		// Record the finer-granularity per-object checkpoint (§5.3) only now
		// that every segment of the round is durable — it is the whole
		// object's resume point.
		if err := storage.WriteCheckpointFile(storage.ObjectCheckpointPath(r.Site.Cfg.Dir, rep.Table), hwm); err != nil {
			return st, 0, err
		}
		cur = hwm
	}

	// ---- Phase 3: locked catch-up + join pending transactions (§5.4) ----
	r.Site.SetObjectState(rep.Table, worker.ObjCatchup, cur)
	p3 := time.Now()
	finalT, err := r.phase3(tb, rep, cur, &st, survivor, catchupOpts{
		writeObjCkpt: true,
		mark: func(ct tuple.Timestamp) {
			r.Site.SetObjectState(rep.Table, worker.ObjCatchup, ct)
		},
	})
	if err != nil {
		return st, 0, err
	}
	st.Phase3 = time.Since(p3)
	st.Total = time.Since(t0)
	reg.Counter("recovery.phase3.tuples").Add(int64(st.Phase3Deletes + st.Phase3Inserts))
	reg.Histogram("recovery.phase3.ns").Observe(st.Phase3.Nanoseconds())
	reg.Counter("recovery.objects").Inc()
	// This object is fully caught up and online: Ready, independent of how
	// far the site's other objects are.
	r.Site.SetObjectState(rep.Table, worker.ObjReady, finalT)
	tr.Recordf(traceID, obs.EvRecovery,
		"phase3 done table=%d deletes=%d inserts=%d finalT=%d", rep.Table, st.Phase3Deletes, st.Phase3Inserts, finalT)
	return st, finalT, nil
}

// phase1 runs the two local queries of §5.2. With survivor=true (this site
// is the table's final survivor of a total outage) the committed rewind is
// skipped — every committed stamp postdating the checkpoint is legitimate
// and irreplaceable — and only uncommitted in-flight debris is discarded.
func (r *engine) phase1(tb *storage.Table, ckpt tuple.Timestamp, noPrune, survivor bool) (deleted, undeleted int, err error) {
	heap := tb.Heap
	desc := heap.Desc()
	insOff := desc.Offset(tuple.FieldInsTS)
	delOff := desc.Offset(tuple.FieldDelTS)
	_ = insOff

	// DELETE LOCALLY FROM rec SEE DELETED
	//   WHERE insertion_time > T_checkpoint OR insertion_time = uncommitted
	// (final survivor: WHERE insertion_time = uncommitted only)
	plan := heap.SegmentPlan(nil, &ckpt, nil, true)
	if noPrune {
		plan = heap.AllSegments()
	}
	if survivor {
		// Only segments that may hold uncommitted tuples matter.
		plan = nil
		if mu := heap.MinUncommittedSeg(); mu >= 0 {
			for _, si := range heap.AllSegments() {
				if si >= mu {
					plan = append(plan, si)
				}
			}
		}
	}
	for _, si := range plan {
		for _, pno := range heap.SegmentPages(si) {
			pid := page.ID{Table: heap.TableID(), PageNo: pno}
			f, err := r.Site.Pool.GetPageNoLock(pid)
			if err != nil {
				return deleted, undeleted, err
			}
			f.Latch.Lock()
			dirty := false
			for slot := 0; slot < f.Page.NumSlots(); slot++ {
				if !f.Page.Used(slot) {
					continue
				}
				ins, err2 := f.Page.ReadInt64At(slot, insOff)
				if err2 != nil {
					err = err2
					break
				}
				if ins == tuple.Uncommitted || (!survivor && ins > ckpt) {
					key, err2 := f.Page.ReadInt64At(slot, desc.Offset(desc.Key))
					if err2 != nil {
						err = err2
						break
					}
					if err2 := f.Page.Delete(slot); err2 != nil {
						err = err2
						break
					}
					tb.Index.Remove(key, page.RecordID{Page: pid, Slot: slot})
					r.Site.Store.MarkFreeSlot(pid.Table, pid.PageNo)
					deleted++
					dirty = true
				}
			}
			f.Latch.Unlock()
			r.Site.Pool.Unpin(f, dirty, 0)
			if err != nil {
				return deleted, undeleted, err
			}
		}
	}
	heap.ClearUncommittedBound()

	if survivor {
		// Deletions are intent-only until commit stamps them, so every
		// on-page deletion timestamp is committed — and for the final
		// survivor, legitimate. Nothing to revert.
		return deleted, undeleted, nil
	}

	// UPDATE LOCALLY rec SET deletion_time = 0 SEE DELETED
	//   WHERE deletion_time > T_checkpoint
	plan = heap.SegmentPlan(nil, nil, &ckpt, false)
	if noPrune {
		plan = heap.AllSegments()
	}
	for _, si := range plan {
		for _, pno := range heap.SegmentPages(si) {
			pid := page.ID{Table: heap.TableID(), PageNo: pno}
			f, err := r.Site.Pool.GetPageNoLock(pid)
			if err != nil {
				return deleted, undeleted, err
			}
			f.Latch.Lock()
			dirty := false
			for slot := 0; slot < f.Page.NumSlots(); slot++ {
				if !f.Page.Used(slot) {
					continue
				}
				del, err2 := f.Page.ReadInt64At(slot, delOff)
				if err2 != nil {
					err = err2
					break
				}
				if del > ckpt {
					if err2 := f.Page.WriteInt64At(slot, delOff, tuple.NotDeleted); err2 != nil {
						err = err2
						break
					}
					undeleted++
					dirty = true
				}
			}
			f.Latch.Unlock()
			r.Site.Pool.Unpin(f, dirty, 0)
			if err != nil {
				return deleted, undeleted, err
			}
		}
	}
	return deleted, undeleted, nil
}

// copyWindow copies the changes in (lo, hi] for one recovery source: first
// the deletion timestamps of tuples inserted at or before lo, then the
// tuples inserted inside the window. With historical=true the remote scans
// run as of hi without locks (Phase 2); Phase 3 passes historical=false and
// hi = 0 semantics via unbounded scans (see phase3).
func (r *engine) copyWindow(tb *storage.Table, src catalog.RecoverySource,
	lo, hi tuple.Timestamp, historical bool, lockTxn txn.ID) (durUpd, durIns time.Duration, nDel, nIns int, err error) {
	addr, ok := r.Cat.SiteAddr(src.Buddy)
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("core: no address for buddy %d", src.Buddy)
	}
	asOf := tuple.Timestamp(0)
	if historical {
		asOf = hi
	}

	// --- deletions: SELECT REMOTELY tuple_id, deletion_time ... ---
	t0 := time.Now()
	delMsg := &wire.Msg{
		Type: wire.MsgRecoveryScan, Table: src.Table, TS: asOf,
		KeyLo: src.Pred.Lo, KeyHi: src.Pred.Hi,
		Flags: wire.FlagYes | wire.FlagHasInsLE | wire.FlagHasDelGT,
		InsLE: lo, DelGT: lo,
	}
	if r.noPrune {
		delMsg.Flags |= wire.FlagNoPrune
	}
	if r.tupleAtATime {
		delMsg.Flags |= wire.FlagTupleAtATime
	}
	if historical {
		// (implicit under historical semantics, stated explicitly in §5.3)
		_ = hi
	}
	err = r.streamFrom(addr, delMsg, tb.Heap.Desc(),
		func(keys []int64, dels []tuple.Timestamp) error {
			nDel += len(keys)
			return r.localSetDeletionBatch(tb, keys, dels)
		}, nil)
	durUpd = time.Since(t0)
	if err != nil {
		return durUpd, 0, nDel, nIns, err
	}

	// --- insertions: SELECT REMOTELY * WHERE ins > lo (AND ins <= hi) ---
	t1 := time.Now()
	insMsg := &wire.Msg{
		Type: wire.MsgRecoveryScan, Table: src.Table, TS: asOf,
		KeyLo: src.Pred.Lo, KeyHi: src.Pred.Hi,
		Flags: wire.FlagHasInsGT, InsGT: lo,
	}
	if r.noPrune {
		insMsg.Flags |= wire.FlagNoPrune
	}
	if r.tupleAtATime {
		insMsg.Flags |= wire.FlagTupleAtATime
	}
	err = r.streamFrom(addr, insMsg, tb.Heap.Desc(), nil,
		func(rows []tuple.Tuple) error {
			nIns += len(rows)
			return r.localInsertBatch(tb, rows)
		})
	durIns = time.Since(t1)
	return durUpd, durIns, nDel, nIns, err
}

// streamFrom runs one remote recovery scan. Batch frames (the default) and
// legacy per-tuple messages both land in the same batch-level callbacks:
// onKeys for keys-only (tuple_id, deletion_time) projections, onRows for
// full tuples — which one applies follows the request's FlagYes. Errors are
// classified: transport and malformed-frame failures wrap errBuddyFailed
// (retryable with a different buddy), callback failures wrap errLocalApply
// (the local replica is the problem; replanning would not help), and a
// remote MsgErr passes through unwrapped.
func (r *engine) streamFrom(addr string, req *wire.Msg, desc *tuple.Desc,
	onKeys func(keys []int64, dels []tuple.Timestamp) error,
	onRows func(rows []tuple.Tuple) error) error {
	keysOnly := req.Flags&wire.FlagYes != 0
	c, err := comm.Dial(addr)
	if err != nil {
		return fmt.Errorf("%w: %v", errBuddyFailed, err)
	}
	defer c.Close()
	if err := c.Send(req); err != nil {
		return fmt.Errorf("%w: %v", errBuddyFailed, err)
	}
	apply := func(keys []int64, dels []tuple.Timestamp, rows []tuple.Tuple) error {
		var err error
		if keysOnly {
			err = onKeys(keys, dels)
		} else {
			err = onRows(rows)
		}
		if err != nil {
			return fmt.Errorf("%w: %v", errLocalApply, err)
		}
		return nil
	}
	b := tuple.NewBatch(wire.BatchTargetRows)
	for {
		m, err := c.Recv()
		if err != nil {
			return fmt.Errorf("%w: %v", errBuddyFailed, err)
		}
		switch m.Type {
		case wire.MsgScanEnd:
			return nil
		case wire.MsgErr:
			return m.Err()
		case wire.MsgTuple: // legacy per-tuple framing (Options.TupleAtATime)
			if keysOnly {
				err = apply([]int64{m.Key}, []tuple.Timestamp{m.TS}, nil)
			} else {
				err = apply(nil, nil, []tuple.Tuple{wire.ToTuple(m.Tuple)})
			}
			if err != nil {
				return err
			}
		case wire.MsgTupleBatch:
			if keysOnly {
				n, err := wire.CheckBatch(m, wire.KeysOnlyStride)
				if err != nil {
					return fmt.Errorf("%w: %v", errBuddyFailed, err)
				}
				keys := make([]int64, n)
				dels := make([]tuple.Timestamp, n)
				for i := 0; i < n; i++ {
					keys[i], dels[i] = wire.KeyRow(m.Raw, i)
				}
				if err := apply(keys, dels, nil); err != nil {
					return err
				}
			} else {
				if _, err := wire.CheckBatch(m, desc.Width()); err != nil {
					return fmt.Errorf("%w: %v", errBuddyFailed, err)
				}
				b.Reset()
				if err := b.DecodeBatch(desc, m.Raw); err != nil {
					return fmt.Errorf("%w: %v", errBuddyFailed, err)
				}
				if err := apply(nil, nil, b.Rows()); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("core: unexpected %v in recovery stream", m.Type)
		}
	}
}

// localSetDeletion applies a copied deletion timestamp:
// UPDATE LOCALLY rec SET deletion_time = del WHERE tuple_id = key AND deletion_time = 0.
func (r *engine) localSetDeletion(tb *storage.Table, key int64, del tuple.Timestamp) error {
	desc := tb.Heap.Desc()
	delOff := desc.Offset(tuple.FieldDelTS)
	for _, rid := range tb.Index.Lookup(key) {
		f, err := r.Site.Pool.GetPageNoLock(rid.Page)
		if err != nil {
			return err
		}
		f.Latch.Lock()
		applied := false
		if f.Page.Used(rid.Slot) {
			cur, err2 := f.Page.ReadInt64At(rid.Slot, delOff)
			if err2 != nil {
				f.Latch.Unlock()
				r.Site.Pool.Unpin(f, false, 0)
				return err2
			}
			if cur == tuple.NotDeleted {
				if err2 := f.Page.WriteInt64At(rid.Slot, delOff, del); err2 != nil {
					f.Latch.Unlock()
					r.Site.Pool.Unpin(f, false, 0)
					return err2
				}
				applied = true
			}
		}
		f.Latch.Unlock()
		r.Site.Pool.Unpin(f, applied, 0)
		if applied {
			tb.Heap.OnCommitStamp(tb.Heap.SegmentFor(rid.Page.PageNo), 0, del)
			return nil
		}
	}
	// No live version found: the tuple may arrive later in the insertion
	// copy already carrying its deletion timestamp; nothing to do.
	return nil
}

// localSetDeletionBatch applies one batch of copied deletion timestamps.
// Keys with a single indexed version — the overwhelming majority — are
// grouped by heap page so each page is pinned and latched once per batch;
// keys with several versions (SEE DELETED history) take the careful
// per-key path.
func (r *engine) localSetDeletionBatch(tb *storage.Table, keys []int64, dels []tuple.Timestamp) error {
	desc := tb.Heap.Desc()
	delOff := desc.Offset(tuple.FieldDelTS)
	type pendingDel struct {
		slot int
		del  tuple.Timestamp
	}
	var byPage map[page.ID][]pendingDel
	for i, key := range keys {
		rids := tb.Index.Lookup(key)
		if len(rids) == 0 {
			// As in localSetDeletion: the tuple may arrive later in the
			// insertion copy already stamped.
			continue
		}
		if len(rids) > 1 {
			if err := r.localSetDeletion(tb, key, dels[i]); err != nil {
				return err
			}
			continue
		}
		if byPage == nil {
			byPage = make(map[page.ID][]pendingDel)
		}
		byPage[rids[0].Page] = append(byPage[rids[0].Page], pendingDel{rids[0].Slot, dels[i]})
	}
	for pid, ps := range byPage {
		f, err := r.Site.Pool.GetPageNoLock(pid)
		if err != nil {
			return err
		}
		f.Latch.Lock()
		dirty := false
		var maxDel tuple.Timestamp
		for _, p := range ps {
			if !f.Page.Used(p.slot) {
				continue
			}
			cur, err2 := f.Page.ReadInt64At(p.slot, delOff)
			if err2 != nil {
				err = err2
				break
			}
			if cur != tuple.NotDeleted {
				continue
			}
			if err2 := f.Page.WriteInt64At(p.slot, delOff, p.del); err2 != nil {
				err = err2
				break
			}
			dirty = true
			if p.del > maxDel {
				maxDel = p.del
			}
		}
		f.Latch.Unlock()
		r.Site.Pool.Unpin(f, dirty, 0)
		if err != nil {
			return err
		}
		if maxDel > 0 {
			tb.Heap.OnCommitStamp(tb.Heap.SegmentFor(pid.PageNo), 0, maxDel)
		}
	}
	return nil
}

// localInsertBatch copies one batch of remote tuples into the local replica
// preserving their timestamps. Each target page is pinned and latched once
// and filled until it rejects a row; index entries and segment timestamp
// bounds are recorded per page after the latch drops, instead of per tuple.
func (r *engine) localInsertBatch(tb *storage.Table, rows []tuple.Tuple) error {
	heap := tb.Heap
	desc := heap.Desc()
	type placedRow struct {
		key      int64
		slot     int
		ins, del tuple.Timestamp
	}
	placed := make([]placedRow, 0, len(rows))
	i := 0
	stall := 0 // consecutive pages that accepted nothing
	for i < len(rows) {
		t := rows[i]
		if len(t.Values) != len(desc.Fields) {
			return fmt.Errorf("core: copied tuple has %d fields, schema %d", len(t.Values), len(desc.Fields))
		}
		pno := heap.InsertHint()
		var seg int32
		if pno < 0 {
			var err error
			pno, seg, err = heap.AllocPage()
			if err != nil {
				return err
			}
		} else {
			seg = heap.SegmentFor(pno)
		}
		pid := page.ID{Table: heap.TableID(), PageNo: pno}
		f, err := r.Site.Pool.GetPageNoLock(pid)
		if err != nil {
			return err
		}
		f.Latch.Lock()
		placed = placed[:0]
		var insErr error
		for i < len(rows) && len(rows[i].Values) == len(desc.Fields) {
			t := rows[i]
			slot, err2 := f.Page.Insert(t.Encode(desc))
			if err2 != nil {
				insErr = err2
				break
			}
			placed = append(placed, placedRow{t.Key(desc), slot, t.InsTS(), t.DelTS()})
			i++
		}
		if insErr == page.ErrPageFull || f.Page.FirstFree() < 0 {
			heap.SetInsertHint(-1)
		} else {
			heap.SetInsertHint(pno)
		}
		f.Latch.Unlock()
		r.Site.Pool.Unpin(f, len(placed) > 0, 0)
		// Index entries and segment bounds: OnCommitStamp only widens
		// min/max, so two calls carry the whole page's insertion range.
		var minIns, maxIns, maxDel tuple.Timestamp
		for _, p := range placed {
			tb.Index.Add(p.key, page.RecordID{Page: pid, Slot: p.slot})
			if p.ins > 0 && p.ins != tuple.Uncommitted {
				if minIns == 0 || p.ins < minIns {
					minIns = p.ins
				}
				if p.ins > maxIns {
					maxIns = p.ins
				}
			}
			if p.del > maxDel {
				maxDel = p.del
			}
		}
		if minIns > 0 {
			heap.OnCommitStamp(seg, minIns, 0)
		}
		if maxIns > 0 || maxDel > 0 {
			heap.OnCommitStamp(seg, maxIns, maxDel)
		}
		if insErr != nil && insErr != page.ErrPageFull {
			return insErr
		}
		if len(placed) == 0 {
			if stall++; stall >= 4 {
				return fmt.Errorf("core: no insertable page for copied tuple")
			}
		} else {
			stall = 0
		}
	}
	return nil
}

// flushObject makes an object's recovered state durable.
func (r *engine) flushObject(tb *storage.Table) error {
	if err := r.Site.Pool.FlushAll(); err != nil {
		return err
	}
	if err := tb.Heap.SyncData(); err != nil {
		return err
	}
	return tb.Heap.FlushMeta()
}

// coordinatorHWM asks the timestamp authority for the high water mark.
func (r *engine) coordinatorHWM() (tuple.Timestamp, error) {
	addr, ok := r.Cat.SiteAddr(r.Cat.Coordinator())
	if !ok {
		return 0, fmt.Errorf("core: coordinator address unknown")
	}
	c, err := comm.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{Type: wire.MsgCurrentTime})
	if err != nil {
		return 0, err
	}
	return resp.TS, nil
}

// buddyObjectReady is the recovery-time failure detector, per object: a
// site is usable as a buddy for one table if its server accepts connections
// AND that table's object is Ready there. The ping reply's per-object list
// makes the distinction — a site still recovering its other objects is a
// legitimate source for the objects whose own catch-up completed, where the
// old whole-site ready flag would have rejected it. A peer that lists no
// objects falls back to the site-level ready flag.
func (r *engine) buddyObjectReady(s catalog.SiteID, table int32) bool {
	if s == r.Site.Cfg.Site {
		return false
	}
	addr, ok := r.Cat.SiteAddr(s)
	if !ok {
		return false
	}
	live, ready, objs := comm.PingObjects(addr, time.Second)
	if !live {
		return false
	}
	for _, o := range objs {
		if o.Table == table {
			return worker.ObjState(o.State) == worker.ObjReady
		}
	}
	return ready
}

// buddyLiveFor refines buddyObjectReady for one object: besides the buddy's
// own readiness claim, a recovery source must still be in the coordinator's
// update set for the table. An evicted-but-reachable buddy (itself crashed
// or partitioned earlier and not yet rejoined) is missing every commit
// since its eviction — seeding catch-up from it would silently lose
// committed data when two replicas are down at once. If the coordinator is
// unreachable the check degrades to ping-only (recovery can still make
// progress; Phase 2's HWM query will fail loudly anyway if the coordinator
// stays gone).
func (r *engine) buddyLiveFor(table int32) func(catalog.SiteID) bool {
	return func(s catalog.SiteID) bool {
		if !r.buddyObjectReady(s, table) {
			return false
		}
		online, err := r.objectOnlineAt(s, table)
		if err != nil {
			return true
		}
		return online
	}
}

// selfIsFinalSurvivor asks the coordinator whether this site is the
// table's final survivor — the last replica out of the update set while no
// replica is online (§5.5 total outage). Errors degrade to false, leaving
// the normal buddy planning (and its K-safety refusal) in charge.
func (r *engine) selfIsFinalSurvivor(table int32) bool {
	addr, ok := r.Cat.SiteAddr(r.Cat.Coordinator())
	if !ok {
		return false
	}
	c, err := comm.Dial(addr)
	if err != nil {
		return false
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{Type: wire.MsgObjectStatus, Site: int32(r.Site.Cfg.Site), Table: table})
	if err != nil {
		return false
	}
	return resp.Type == wire.MsgOK && resp.Flags&wire.FlagSurvivor != 0
}

// objectOnlineAt asks the coordinator whether a site's replica of a table
// participates in updates.
func (r *engine) objectOnlineAt(site catalog.SiteID, table int32) (bool, error) {
	addr, ok := r.Cat.SiteAddr(r.Cat.Coordinator())
	if !ok {
		return false, fmt.Errorf("core: coordinator address unknown")
	}
	c, err := comm.Dial(addr)
	if err != nil {
		return false, err
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{Type: wire.MsgObjectStatus, Site: int32(site), Table: table})
	if err != nil {
		return false, err
	}
	return resp.Type == wire.MsgOK && resp.Flags&wire.FlagYes != 0, nil
}

func removeIfExists(path string) error {
	err := osRemove(path)
	if err != nil && !errorsIsNotExist(err) {
		return err
	}
	return nil
}
