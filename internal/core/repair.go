// Torn-page repair: a page whose CRC32 trailer fails verification is
// quarantined by the storage layer and treated here as a *missing key
// range*. The segment directory maps the bad page to its segment's
// insertion-timestamp bounds [TminIns, TmaxIns]; everything the page could
// have held lies inside that window, so the same lock-free historical
// buddy scan that drives recovery Phase 2 (§5.3) can restore it: fetch the
// window from a live buddy as of the coordinator's high water mark, skip
// the versions still present locally on healthy pages, and re-insert the
// remainder. No redo log is consulted — this is the HARBOR thesis applied
// to media corruption instead of whole-site loss.
package core

import (
	"errors"
	"fmt"
	"math"

	"harbor/internal/catalog"
	"harbor/internal/obs"
	"harbor/internal/page"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/wire"
)

// ErrRepairDeferred reports that an online repair was declined because a
// quarantined page's segment may still hold uncommitted tuples: reformatting
// it could strand in-flight commit stamping. The page stays quarantined
// (scans skip it, point reads keep failing) and a later read retries.
var ErrRepairDeferred = errors.New("core: page repair deferred (segment may hold uncommitted tuples)")

// RepairTable restores every quarantined page of one local table online,
// without taking the site offline. It is the worker read path's corruption
// hook: wired via worker.Site.SetRepairHook, fired in the background the
// first time a scan or point read trips ErrPageCorrupt. Returns the number
// of pages repaired.
func (r *Recoverer) RepairTable(table int32) (int, error) {
	tb, err := r.Site.Mgr.Get(table)
	if err != nil {
		return 0, err
	}
	heap := tb.Heap
	pages := heap.QuarantinedPages()
	if len(pages) == 0 {
		return 0, nil
	}
	// Online safety gate: only segments proven fully committed are eligible.
	// A segment at or past MinUncommittedSeg may hold tuples whose commit
	// stamp is still in flight by record id; reformatting the page would
	// redirect those rids at the wrong slots.
	if mu := heap.MinUncommittedSeg(); mu >= 0 {
		for _, pno := range pages {
			if si := heap.SegmentFor(pno); si >= mu {
				return 0, ErrRepairDeferred
			}
		}
	}
	var rep *catalog.Replica
	for _, cand := range r.Cat.ReplicasOn(r.Site.Cfg.Site) {
		if cand.Table == table {
			c := cand
			rep = &c
			break
		}
	}
	if rep == nil {
		return 0, fmt.Errorf("core: table %d has no replica on site %d", table, r.Site.Cfg.Site)
	}
	return r.repairTable(tb, *rep, 0, false)
}

// repairTable reformats and restores every quarantined page of one replica.
//
// capTS > 0 caps the restored insertion window at the recovery checkpoint:
// during RecoverSite the scrub runs *before* Phase 1, whose rewind deletes
// everything inserted after the checkpoint anyway, and Phase 2 then re-copies
// the (ckpt, hwm] window table-wide without deduplication — restoring those
// tuples here too would duplicate them. Online repair passes capTS = 0 (no
// Phase 2 follows, so the full window must be restored).
//
// With survivor = true there is no live buddy by definition (§5.5 total
// outage): the pages are reformatted so the replica stays scannable, and the
// unrecoverable loss is recorded loudly instead of silently.
func (r *Recoverer) repairTable(tb *storage.Table, rep catalog.Replica, capTS tuple.Timestamp, survivor bool) (int, error) {
	heap := tb.Heap
	pages := heap.QuarantinedPages()
	if len(pages) == 0 {
		return 0, nil
	}
	reg, tr := r.Site.Obs(), r.Site.Trace()
	traceID := int64(r.ids.Next())
	desc := heap.Desc()
	insOff := desc.Offset(tuple.FieldInsTS)

	// The missing key range's timestamp bounds: the union of the insertion
	// windows of every segment owning a quarantined page.
	segs := heap.Segments()
	lo := tuple.Timestamp(math.MaxInt64)
	hi := tuple.Timestamp(0)
	for _, pno := range pages {
		if si := heap.SegmentFor(pno); si >= 0 && int(si) < len(segs) {
			s := segs[si]
			if s.TmaxIns > 0 {
				if s.TminIns < lo {
					lo = s.TminIns
				}
				if s.TmaxIns > hi {
					hi = s.TmaxIns
				}
			}
		}
	}
	if capTS > 0 && hi > capTS {
		hi = capTS
	}

	// Fetch the lost window from live buddies BEFORE touching the bad pages:
	// until the fetch is safely in memory, the quarantine must survive. If
	// the pages were reformatted first and the buddy fetch then failed, the
	// quarantine would already be lifted over a blank, valid-CRC page — the
	// committed rows silently gone, with nothing left to re-arm the repair.
	// With fetch-first, a failed attempt leaves the pages quarantined (reads
	// keep erroring, the coordinator replans them to healthy replicas) and
	// the next corrupt read retries the repair. The survivor and empty-window
	// paths skip the fetch: one has no buddy by definition, the other needs
	// nothing restored.
	windowEmpty := hi == 0 || lo > hi
	var fetched []tuple.Tuple
	var hwm tuple.Timestamp
	if !windowEmpty && !survivor {
		var err error
		fetched, hwm, err = r.fetchRepairWindow(rep, desc, lo, hi)
		if err != nil {
			return 0, err
		}
	}

	// Reformat each bad page: drop its stale index entries (the keys cannot
	// be read back, so this is a sweep by page id), then overwrite it with a
	// freshly formatted empty image. WritePageData stamps a valid CRC and
	// lifts the quarantine; concurrent readers from here on see an empty
	// page instead of an error. The buffer pool cannot hold a frame for any
	// of these pages — the read that would have populated one is exactly
	// what failed.
	for _, pno := range pages {
		pid := page.ID{Table: heap.TableID(), PageNo: pno}
		tb.Index.DropPage(pid)
		img := page.New(pid, heap.TupleWidth())
		if err := heap.WritePageData(pno, img.Bytes()); err != nil {
			return 0, fmt.Errorf("%w: reformat page %d: %v", errLocalApply, pno, err)
		}
		r.Site.Store.MarkFreeSlot(heap.TableID(), pno)
	}

	if windowEmpty {
		// The owning segments hold nothing committed inside the cap;
		// reformatting alone restores the invariant.
		if err := r.flushObject(tb); err != nil {
			return 0, fmt.Errorf("%w: %v", errLocalApply, err)
		}
		reg.Counter("recover.page_repairs").Add(int64(len(pages)))
		tr.Recordf(traceID, obs.EvRecovery,
			"page repair table=%d pages=%v empty-window reformat only", rep.Table, pages)
		return len(pages), nil
	}

	if survivor {
		// Final survivor of a total outage: no buddy exists that could hold
		// the lost window. Keep the replica scannable, report the loss.
		if err := r.flushObject(tb); err != nil {
			return 0, fmt.Errorf("%w: %v", errLocalApply, err)
		}
		reg.Counter("recover.page_repairs_lost").Add(int64(len(pages)))
		tr.Recordf(traceID, obs.EvRecovery,
			"page repair table=%d pages=%v UNRECOVERABLE: final survivor, window=[%d,%d] lost",
			rep.Table, pages, lo, hi)
		return len(pages), nil
	}

	// A fetched version is missing exactly when no healthy page still holds
	// it: each version is stored once per replica, so (key, insertion time)
	// identifies it, and the index — purged of the bad pages' rids above —
	// knows every survivor.
	present := func(key int64, ins tuple.Timestamp) (bool, error) {
		for _, rid := range tb.Index.Lookup(key) {
			f, err := r.Site.Pool.GetPageNoLock(rid.Page)
			if err != nil {
				return false, err
			}
			f.Latch.Lock()
			var got int64
			var err2 error
			if f.Page.Used(rid.Slot) {
				got, err2 = f.Page.ReadInt64At(rid.Slot, insOff)
			}
			f.Latch.Unlock()
			r.Site.Pool.Unpin(f, false, 0)
			if err2 != nil {
				return false, err2
			}
			if tuple.Timestamp(got) == ins {
				return true, nil
			}
		}
		return false, nil
	}

	var missing []tuple.Tuple
	for _, t := range fetched {
		ok, err := present(t.Key(desc), t.InsTS())
		if err != nil {
			return 0, err
		}
		if !ok {
			missing = append(missing, t)
		}
	}

	// Re-insert the missing versions, preferring the reformatted pages
	// themselves (their segments' bounds already cover the window);
	// localInsertBatch handles any overflow via fresh allocation and widens
	// segment bounds conservatively either way.
	if err := r.repairPlace(tb, pages, missing); err != nil {
		return 0, err
	}
	if err := r.flushObject(tb); err != nil {
		return 0, fmt.Errorf("%w: %v", errLocalApply, err)
	}
	reg.Counter("recover.page_repairs").Add(int64(len(pages)))
	reg.Counter("recover.page_repair_tuples").Add(int64(len(missing)))
	tr.Recordf(traceID, obs.EvRecovery,
		"page repair table=%d pages=%v window=[%d,%d] asof=%d restored=%d",
		rep.Table, pages, lo, hi, hwm, len(missing))
	return len(pages), nil
}

// fetchRepairWindow pulls every version of the replica's key range whose
// insertion timestamp lies in (lo-1, hi] from live buddies, as of the
// coordinator's high water mark: a §5.3 historical SEE DELETED scan, so the
// copied images arrive with every deletion stamp through hwm already
// applied. Failures are classified like Phase 2's: transport errors wrap
// errBuddyFailed (the recovery retry loop replans), and nothing local has
// been modified yet, so the caller can abandon the repair safely.
func (r *Recoverer) fetchRepairWindow(rep catalog.Replica, desc *tuple.Desc, lo, hi tuple.Timestamp) ([]tuple.Tuple, tuple.Timestamp, error) {
	hwm, err := r.coordinatorHWM()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: hwm: %v", errBuddyFailed, err)
	}
	plan, err := r.Cat.RecoveryPlan(rep.Table, rep.Range, r.Site.Cfg.Site, r.buddyLiveFor(rep.Table))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", errBuddyFailed, err)
	}
	var fetched []tuple.Tuple
	for _, src := range plan {
		req := &wire.Msg{
			Type: wire.MsgRecoveryScan, Table: src.Table, TS: hwm,
			KeyLo: src.Pred.Lo, KeyHi: src.Pred.Hi,
			Flags: wire.FlagHasInsGT | wire.FlagHasInsLE,
			InsGT: lo - 1, InsLE: hi,
		}
		if r.noPrune {
			req.Flags |= wire.FlagNoPrune
		}
		err := r.streamFrom(r.mustAddr(src.Buddy), req, desc, nil,
			func(rows []tuple.Tuple) error {
				for _, t := range rows {
					fetched = append(fetched, t.Clone())
				}
				return nil
			})
		if err != nil {
			return nil, 0, err
		}
	}
	return fetched, hwm, nil
}

// repairPlace writes restored versions back into the reformatted pages,
// spilling any overflow through the normal insert path.
func (r *Recoverer) repairPlace(tb *storage.Table, targets []int32, rows []tuple.Tuple) error {
	heap := tb.Heap
	desc := heap.Desc()
	i := 0
	for _, pno := range targets {
		if i >= len(rows) {
			break
		}
		seg := heap.SegmentFor(pno)
		if seg < 0 {
			continue
		}
		pid := page.ID{Table: heap.TableID(), PageNo: pno}
		f, err := r.Site.Pool.GetPageNoLock(pid)
		if err != nil {
			return fmt.Errorf("%w: %v", errLocalApply, err)
		}
		f.Latch.Lock()
		type placedRow struct {
			key  int64
			slot int
			ins  tuple.Timestamp
			del  tuple.Timestamp
		}
		var placed []placedRow
		for i < len(rows) {
			t := rows[i]
			slot, err2 := f.Page.Insert(t.Encode(desc))
			if err2 != nil {
				break // page full; move to the next target
			}
			placed = append(placed, placedRow{t.Key(desc), slot, t.InsTS(), t.DelTS()})
			i++
		}
		f.Latch.Unlock()
		r.Site.Pool.Unpin(f, len(placed) > 0, 0)
		var minIns, maxIns, maxDel tuple.Timestamp
		for _, p := range placed {
			tb.Index.Add(p.key, page.RecordID{Page: pid, Slot: p.slot})
			if p.ins > 0 && p.ins != tuple.Uncommitted {
				if minIns == 0 || p.ins < minIns {
					minIns = p.ins
				}
				if p.ins > maxIns {
					maxIns = p.ins
				}
			}
			if p.del > maxDel {
				maxDel = p.del
			}
		}
		if minIns > 0 {
			heap.OnCommitStamp(seg, minIns, 0)
		}
		if maxIns > 0 || maxDel > 0 {
			heap.OnCommitStamp(seg, maxIns, maxDel)
		}
	}
	if i < len(rows) {
		if err := r.localInsertBatch(tb, rows[i:]); err != nil {
			return fmt.Errorf("%w: %v", errLocalApply, err)
		}
	}
	return nil
}

// mustAddr resolves a buddy address, yielding a dial-time failure (and thus
// an errBuddyFailed replan) rather than a panic when the catalog is stale.
func (r *Recoverer) mustAddr(s catalog.SiteID) string {
	addr, _ := r.Cat.SiteAddr(s)
	return addr
}
