package core

import (
	"errors"
	"testing"

	"harbor/internal/comm"
	"harbor/internal/tuple"
	"harbor/internal/wire"
)

func streamDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int32},
	)
}

// fakeBuddy runs a server that reads the recovery-scan request off each
// connection and then plays the canned script.
func fakeBuddy(t *testing.T, serve func(c *comm.Conn)) string {
	t.Helper()
	srv, err := comm.Listen("127.0.0.1:0", comm.HandlerFunc(func(c *comm.Conn) {
		if _, err := c.Recv(); err != nil {
			return
		}
		serve(c)
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

// A callback failure is the local replica's fault: it must surface as
// errLocalApply — NOT errBuddyFailed, which would make RecoverSite replan
// onto another buddy and fail the same way there.
func TestStreamFromClassifiesLocalApplyErrors(t *testing.T) {
	desc := streamDesc()
	b := tuple.NewBatch(1)
	b.Append(tuple.MustMake(desc, tuple.VInt(1), tuple.VInt(10)))
	raw := b.EncodeTo(desc, nil)
	addr := fakeBuddy(t, func(c *comm.Conn) {
		_ = c.Send(&wire.Msg{Type: wire.MsgTupleBatch, Count: 1, Raw: raw})
		_ = c.Send(&wire.Msg{Type: wire.MsgScanEnd, Count: 1})
	})
	boom := errors.New("page write failed")
	err := (&Recoverer{}).streamFrom(addr,
		&wire.Msg{Type: wire.MsgRecoveryScan, Table: 1, Flags: wire.FlagHasInsGT}, desc,
		nil, func(rows []tuple.Tuple) error { return boom })
	if !errors.Is(err, errLocalApply) {
		t.Fatalf("apply failure not classified as errLocalApply: %v", err)
	}
	if errors.Is(err, errBuddyFailed) {
		t.Fatalf("apply failure misclassified as buddy failure: %v", err)
	}
}

// A connection dying mid-stream is the buddy's fault: errBuddyFailed, so
// the caller replans. Frames received before the failure must have been
// applied — recovery applies are idempotent, progress is never discarded.
func TestStreamFromClassifiesBuddyTransportErrors(t *testing.T) {
	addr := fakeBuddy(t, func(c *comm.Conn) {
		_ = c.Send(&wire.Msg{Type: wire.MsgTupleBatch, Count: 1,
			Flags: wire.FlagYes, Raw: wire.AppendKeyRow(nil, 7, 42)})
		c.Close() // no MsgScanEnd: buddy died mid-stream
	})
	var gotKeys []int64
	var gotDels []tuple.Timestamp
	err := (&Recoverer{}).streamFrom(addr,
		&wire.Msg{Type: wire.MsgRecoveryScan, Table: 1, Flags: wire.FlagYes}, streamDesc(),
		func(keys []int64, dels []tuple.Timestamp) error {
			gotKeys = append(gotKeys, keys...)
			gotDels = append(gotDels, dels...)
			return nil
		}, nil)
	if !errors.Is(err, errBuddyFailed) {
		t.Fatalf("mid-stream disconnect not classified as errBuddyFailed: %v", err)
	}
	if errors.Is(err, errLocalApply) {
		t.Fatalf("transport failure misclassified as local apply: %v", err)
	}
	if len(gotKeys) != 1 || gotKeys[0] != 7 || gotDels[0] != 42 {
		t.Fatalf("pre-failure frame not applied: keys=%v dels=%v", gotKeys, gotDels)
	}
}

// A frame whose payload length disagrees with its row count is corrupt
// buddy output: retryable against a different replica.
func TestStreamFromRejectsMalformedFrames(t *testing.T) {
	addr := fakeBuddy(t, func(c *comm.Conn) {
		_ = c.Send(&wire.Msg{Type: wire.MsgTupleBatch, Count: 3,
			Flags: wire.FlagYes, Raw: make([]byte, wire.KeysOnlyStride)})
	})
	err := (&Recoverer{}).streamFrom(addr,
		&wire.Msg{Type: wire.MsgRecoveryScan, Table: 1, Flags: wire.FlagYes}, streamDesc(),
		func([]int64, []tuple.Timestamp) error { return nil }, nil)
	if !errors.Is(err, errBuddyFailed) {
		t.Fatalf("malformed frame not classified as errBuddyFailed: %v", err)
	}
}

// A remote MsgErr is an application-level answer (unknown table, bad
// predicate): it passes through unwrapped so it hits neither the replan
// path nor the abort-recovery path by sentinel.
func TestStreamFromPassesRemoteErrorsUnwrapped(t *testing.T) {
	addr := fakeBuddy(t, func(c *comm.Conn) {
		_ = c.Send(&wire.Msg{Type: wire.MsgErr, Text: "no such table"})
	})
	err := (&Recoverer{}).streamFrom(addr,
		&wire.Msg{Type: wire.MsgRecoveryScan, Table: 99, Flags: wire.FlagYes}, streamDesc(),
		func([]int64, []tuple.Timestamp) error { return nil }, nil)
	if err == nil {
		t.Fatal("remote error lost")
	}
	if errors.Is(err, errBuddyFailed) || errors.Is(err, errLocalApply) {
		t.Fatalf("remote error wrongly wrapped: %v", err)
	}
}

// Legacy per-tuple framing (Options.TupleAtATime) lands in the same
// batch-level callbacks as 1-row slices, with the same classification.
func TestStreamFromHandlesLegacyPerTupleFraming(t *testing.T) {
	addr := fakeBuddy(t, func(c *comm.Conn) {
		_ = c.Send(&wire.Msg{Type: wire.MsgTuple, Key: 3, TS: 9})
		_ = c.Send(&wire.Msg{Type: wire.MsgTuple, Key: 4, TS: 11})
		_ = c.Send(&wire.Msg{Type: wire.MsgScanEnd, Count: 2})
	})
	var gotKeys []int64
	err := (&Recoverer{}).streamFrom(addr,
		&wire.Msg{Type: wire.MsgRecoveryScan, Table: 1,
			Flags: wire.FlagYes | wire.FlagTupleAtATime}, streamDesc(),
		func(keys []int64, dels []tuple.Timestamp) error {
			gotKeys = append(gotKeys, keys...)
			return nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotKeys) != 2 || gotKeys[0] != 3 || gotKeys[1] != 4 {
		t.Fatalf("legacy stream keys: %v", gotKeys)
	}
}
