package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/expr"
	"harbor/internal/obs"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// MigrateSpec describes one segment transfer onto a target site.
type MigrateSpec struct {
	Table int32
	// Range is the half-open key range to transfer.
	Range expr.KeyRange
	// DropFrom, when nonzero, names the donor site whose coverage of Range
	// is withdrawn (and physically purged) once the target is Ready — a
	// genuine move. Zero adds coverage without removing any (a join).
	DropFrom catalog.SiteID
	// SegPages overrides the table's default segment size for a replica
	// created on the target (0 uses the table spec's).
	SegPages int32
}

// Migrate is the second caller of the segment-transfer engine: it streams
// one key range of one table from the range's live holders onto this site
// while the cluster keeps serving, then flips catalog placement atomically
// under the engine's Phase 3 table locks. The transfer reuses the recovery
// state machine verbatim — the carved segment walks NeedsRecovery →
// HistoricalCopy → Catchup → Ready, so mid-migration reads and writes are
// gated (and fault-in prioritised) by exactly the rules crash recovery
// already obeys. With DropFrom set, the donor's coverage is withdrawn after
// the flip (K-safety-guarded at the coordinator) and its copy of the range
// physically purged.
//
// Limitation: if the target crashes after copying but before the placement
// flip, the copied rows linger locally until the target's next RecoverSite,
// which purges every range the catalog does not assign to it.
func Migrate(site *worker.Site, cat *catalog.Catalog, spec MigrateSpec, opt Options) (ObjectStats, error) {
	opt = opt.withDefaults()
	st := ObjectStats{Table: spec.Table}
	if spec.Range.Empty() {
		return st, nil
	}
	r := newEngine(site, cat)
	r.noPrune = opt.DisablePruning
	r.tupleAtATime = opt.TupleAtATime

	// The target may have never heard of the table (a cold joiner).
	spec2, ok := cat.Table(spec.Table)
	if !ok {
		return st, fmt.Errorf("core: migrate of unknown table %d", spec.Table)
	}
	segPages := spec.SegPages
	if segPages == 0 {
		segPages = spec2.SegPages
	}
	if !site.Mgr.Has(spec.Table) {
		if err := site.CreateTable(spec.Table, spec2.Desc, segPages); err != nil {
			return st, err
		}
	}

	var err error
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		st, err = r.migrateOnce(spec, segPages, opt)
		if err == nil || (!errors.Is(err, errBuddyFailed) &&
			!errors.Is(err, storage.ErrPageCorrupt) &&
			!errors.Is(err, wire.ErrRemoteCorrupt)) {
			break
		}
		// Same retry classes as RecoverSite's runOne: a donor died or tripped
		// a CRC mid-stream — back off, then replan against the live holders.
		if attempt < opt.Retries {
			opt.RetryBackoff.Sleep(attempt)
		}
	}
	if err != nil {
		// The carved segment is not servable; leave it demoted so the gate
		// keeps refusing reads into the partial copy.
		site.CarveSegmentState(spec.Table, spec.Range, worker.ObjNeedsRecovery, 0)
		return st, err
	}

	if spec.DropFrom != 0 {
		donor := catalog.Replica{Site: spec.DropFrom, Table: spec.Table, Range: spec.Range}
		if _, err := placementChange(cat, false, donor); err != nil {
			return st, fmt.Errorf("core: withdrawing donor %d coverage of [%d,%d): %w",
				spec.DropFrom, spec.Range.Lo, spec.Range.Hi, err)
		}
		// Physical cleanup at the donor. A donor that died between the flip
		// and the purge is tolerated: its next RecoverSite purges every range
		// the catalog no longer assigns to it.
		if _, err := purgeRemote(cat, spec.DropFrom, spec.Table, spec.Range); err != nil {
			site.Obs().Counter("migrate.donor_purge_deferred").Inc()
		}
	}
	return st, nil
}

// migrateOnce is one attempt of the transfer plan: local idempotency reset,
// historical copy rounds, then the engine's locked catch-up with the
// placement flip under the donor table locks.
func (r *engine) migrateOnce(spec MigrateSpec, segPages int32, opt Options) (ObjectStats, error) {
	st := ObjectStats{Table: spec.Table}
	t0 := time.Now()
	site := r.Site
	tb, err := site.Mgr.Get(spec.Table)
	if err != nil {
		return st, err
	}
	tr, reg := site.Trace(), site.Obs()
	traceID := int64(r.ids.Next())
	tr.Recordf(traceID, obs.EvRecovery, "migrate start table=%d range=[%d,%d)",
		spec.Table, spec.Range.Lo, spec.Range.Hi)

	// Idempotency reset: a previous attempt (or incarnation) may have left a
	// partial copy; delete it rather than double-apply. No purge note — the
	// range is about to become legitimately resident.
	if _, err := site.PurgeRange(spec.Table, spec.Range); err != nil {
		return st, err
	}
	site.CarveSegmentState(spec.Table, spec.Range, worker.ObjNeedsRecovery, 0)

	rep := catalog.Replica{Site: site.Cfg.Site, Table: spec.Table, Range: spec.Range, SegPages: segPages}

	// Historical copy rounds, the Phase 2 shape with lo starting at 0: the
	// first round's deletion pass is a cheap no-op (nothing local inserted at
	// or before 0) and its insertion pass copies the range's full history —
	// tuples arrive carrying their original insertion and deletion stamps,
	// so the copied prefix serves historical reads the moment its horizon
	// covers them, exactly like a recovering segment.
	cur := tuple.Timestamp(0)
	for round := 0; round < opt.MaxRounds; round++ {
		hwm, err := r.coordinatorHWM()
		if err != nil {
			return st, err
		}
		if hwm <= cur || (round > 0 && hwm-cur <= opt.RepeatThreshold) {
			break
		}
		st.Rounds++
		plan, err := r.Cat.RecoveryPlan(spec.Table, spec.Range, site.Cfg.Site, r.buddyLiveFor(spec.Table))
		if err != nil {
			return st, err
		}
		for _, src := range plan {
			du, di, nDel, nIns, err := r.copyWindow(tb, src, cur, hwm, true, 0)
			st.Phase2Update += du
			st.Phase2Insert += di
			st.Phase2Deletes += nDel
			st.Phase2Inserts += nIns
			reg.Counter("migrate.copied.tuples").Add(int64(nDel + nIns))
			if err != nil {
				return st, err
			}
		}
		if err := r.flushObject(tb); err != nil {
			return st, err
		}
		site.CarveSegmentState(spec.Table, spec.Range, worker.ObjHistoricalCopy, hwm)
		tr.Recordf(traceID, obs.EvRecovery, "migrate round=%d table=%d window=(%d,%d] sources=%d",
			st.Rounds, spec.Table, cur, hwm, len(plan))
		cur = hwm
	}

	// Locked catch-up + placement flip. The engine acquires table read locks
	// on the live holders, drains the remaining window, and — still under
	// those locks, so no commit can slip between the copy and the flip —
	// installs this site's coverage of the range at the coordinator. The
	// object-online announcement then joins pending transactions (§5.4.2),
	// whose replay is range-filtered to this replica's segments.
	site.CarveSegmentState(spec.Table, spec.Range, worker.ObjCatchup, cur)
	p3 := time.Now()
	finalT, err := r.phase3(tb, rep, cur, &st, false, catchupOpts{
		writeObjCkpt: false, // migration must not disturb crash recovery's resume hints
		mark: func(ct tuple.Timestamp) {
			site.CarveSegmentState(spec.Table, spec.Range, worker.ObjCatchup, ct)
		},
		underLock: func(finalT tuple.Timestamp) error {
			_, err := placementChange(r.Cat, true, rep)
			return err
		},
	})
	if err != nil {
		return st, err
	}
	st.Phase3 = time.Since(p3)
	site.CarveSegmentState(spec.Table, spec.Range, worker.ObjReady, finalT)
	site.ClearPurgedRange(spec.Table, spec.Range)
	st.Total = time.Since(t0)
	reg.Counter("migrate.ranges").Inc()
	tr.Recordf(traceID, obs.EvRecovery, "migrate done table=%d range=[%d,%d) finalT=%d inserts=%d",
		spec.Table, spec.Range.Lo, spec.Range.Hi, finalT, st.Phase2Inserts+st.Phase3Inserts)
	return st, nil
}

// Join brings a cold site into the cluster while it serves: register the
// site's address with the coordinator, take the advisory assignment the
// coordinator hands back, and stream each assigned range in via Migrate.
// Existing sites keep their coverage (DropFrom is zero); rebalancing load
// off them afterwards is PlanSplit + Migrate with a donor.
func Join(site *worker.Site, cat *catalog.Catalog, opt Options) error {
	addr, ok := cat.SiteAddr(cat.Coordinator())
	if !ok {
		return fmt.Errorf("core: coordinator address unknown")
	}
	c, err := comm.Dial(addr)
	if err != nil {
		return err
	}
	resp, err := c.Call(&wire.Msg{
		Type: wire.MsgJoinSite, Site: int32(site.Cfg.Site), Text: site.Addr(),
	})
	c.Close()
	if err != nil {
		return err
	}
	if resp.Type != wire.MsgOK {
		return fmt.Errorf("core: join refused: %s", resp.Text)
	}
	var errs []error
	for _, o := range resp.Objs {
		spec := MigrateSpec{Table: o.Table, Range: expr.KeyRange{Lo: o.Lo, Hi: o.Hi}}
		if _, err := Migrate(site, cat, spec, opt); err != nil {
			errs = append(errs, fmt.Errorf("core: join transfer of table %d: %w", o.Table, err))
		}
	}
	return errors.Join(errs...)
}

// PlanSplit proposes splitting a donor's coverage of table at the median of
// its local key distribution, yielding the MigrateSpec that moves the upper
// half elsewhere. ok=false when the donor holds no splittable range of the
// table (no replica, or too few keys to name a quantile bound inside it).
func PlanSplit(donor *worker.Site, cat *catalog.Catalog, table int32) (MigrateSpec, bool) {
	tb, err := donor.Mgr.Get(table)
	if err != nil {
		return MigrateSpec{}, false
	}
	bounds := tb.Index.Quantiles(2)
	if len(bounds) == 0 {
		return MigrateSpec{}, false
	}
	mid := bounds[0]
	for _, rep := range cat.ReplicasOn(donor.Cfg.Site) {
		if rep.Table != table {
			continue
		}
		if rep.Range.Contains(mid) && mid > rep.Range.Lo {
			return MigrateSpec{
				Table:    table,
				Range:    expr.KeyRange{Lo: mid, Hi: rep.Range.Hi},
				DropFrom: donor.Cfg.Site,
				SegPages: rep.SegPages,
			}, true
		}
	}
	return MigrateSpec{}, false
}

// LeastLoadedSite picks the worker site carrying the fewest replica ranges,
// excluding the given sites (and the coordinator). Ties break toward the
// highest SiteID — the most recently joined site tends to be emptiest.
func LeastLoadedSite(cat *catalog.Catalog, exclude ...catalog.SiteID) (catalog.SiteID, bool) {
	skip := map[catalog.SiteID]bool{cat.Coordinator(): true}
	for _, s := range exclude {
		skip[s] = true
	}
	best := catalog.SiteID(0)
	bestN := -1
	for _, s := range cat.Sites() {
		if skip[s] {
			continue
		}
		n := len(cat.ReplicasOn(s))
		if bestN < 0 || n < bestN || (n == bestN && s > best) {
			best, bestN = s, n
		}
	}
	return best, bestN >= 0
}

// placementChange asks the coordinator to install (add=true) or withdraw a
// replica range, returning the new placement version. The coordinator
// drains reads planned against the previous placement before answering, so
// a withdraw may be followed immediately by a physical purge.
func placementChange(cat *catalog.Catalog, add bool, rep catalog.Replica) (int64, error) {
	addr, ok := cat.SiteAddr(cat.Coordinator())
	if !ok {
		return 0, fmt.Errorf("core: coordinator address unknown")
	}
	c, err := comm.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	m := &wire.Msg{Type: wire.MsgPlacementChange, Site: int32(rep.Site), Table: rep.Table,
		KeyLo: rep.Range.Lo, KeyHi: rep.Range.Hi, SegPages: rep.SegPages}
	if add {
		m.Flags |= wire.FlagYes
	}
	resp, err := c.Call(m)
	if err != nil {
		return 0, err
	}
	if resp.Type != wire.MsgOK {
		return 0, resp.Err()
	}
	return int64(resp.TS), nil
}

// purgeRemote asks a site to physically delete its copy of a range (and
// refuse placement-stale scans into it from then on).
func purgeRemote(cat *catalog.Catalog, site catalog.SiteID, table int32, rng expr.KeyRange) (int64, error) {
	addr, ok := cat.SiteAddr(site)
	if !ok {
		return 0, fmt.Errorf("core: no address for site %d", site)
	}
	c, err := comm.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{Type: wire.MsgPurgeRange, Table: table, KeyLo: rng.Lo, KeyHi: rng.Hi})
	if err != nil {
		return 0, err
	}
	if resp.Type != wire.MsgOK {
		return 0, resp.Err()
	}
	return resp.Count, nil
}

// uncoveredRanges returns full minus the union of held — the ranges a site
// physically holds no claim to. Crash recovery purges them: a donor that
// died after its coverage moved away but before the post-move purge would
// otherwise revive rows the placement no longer assigns to it.
func uncoveredRanges(full expr.KeyRange, held []expr.KeyRange) []expr.KeyRange {
	hs := make([]expr.KeyRange, 0, len(held))
	for _, h := range held {
		h = h.Intersect(full)
		if !h.Empty() {
			hs = append(hs, h)
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].Lo < hs[j].Lo })
	var gaps []expr.KeyRange
	cur := full.Lo
	covered := false // whether cur has reached full.Hi's unbounded end
	for _, h := range hs {
		if h.Lo > cur {
			gaps = append(gaps, expr.KeyRange{Lo: cur, Hi: h.Lo})
		}
		if h.Hi > cur {
			cur = h.Hi
		}
		if h.Hi == full.Hi {
			covered = true
		}
	}
	if !covered && cur < full.Hi {
		gaps = append(gaps, expr.KeyRange{Lo: cur, Hi: full.Hi})
	}
	return gaps
}
