// The segment-transfer engine: HARBOR's Phase 2/3 catch-up machinery
// factored out of "this site crashed". The primitive it implements is
// "copy a consistent, timestamped key range from a live buddy without
// blocking writers": a historical SEE DELETED window copy (lock-free,
// Phase 2) followed by a locked catch-up that drains the stragglers and
// fixes a final consistent time (Phase 3). Two callers drive it:
//
//	Recoverer.RecoverSite — crash recovery (recover.go), behavior-identical
//	    to the pre-extraction code path;
//	Migrate — online data movement (migrate.go): node join and segment
//	    split/rebalance stream a key range onto a live or cold site while
//	    the cluster serves, then flip catalog placement atomically under
//	    the donor table locks.
package core

import (
	"sync"

	"harbor/internal/catalog"
	"harbor/internal/expr"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// engine holds the transfer-level state shared by every caller: the target
// site the data lands on, the catalog the source plans come from, and the
// fault-in hot ranges that order segment copies. It is deliberately
// unexported — callers construct a Recoverer (crash recovery) or call
// Migrate/Join (data movement); the engine is the mechanism, not the policy.
type engine struct {
	Site *worker.Site
	Cat  *catalog.Catalog

	ids *txn.IDSource
	// noPrune and tupleAtATime mirror the Options for the remote scans.
	noPrune      bool
	tupleAtATime bool

	// hotRanges records, per table, the key ranges refused reads faulted in
	// (fed by the site's fault-in hook). Phase 2 copies the segments those
	// ranges intersect first, so the read that is actually waiting becomes
	// servable again after copying a fraction of its table.
	hotMu     sync.Mutex
	hotRanges map[int32][]expr.KeyRange
}

// newEngine builds a transfer engine targeting one site.
func newEngine(site *worker.Site, cat *catalog.Catalog) *engine {
	return &engine{Site: site, Cat: cat,
		ids:       txn.NewIDSource(int32(site.Cfg.Site) + 1<<20),
		hotRanges: map[int32][]expr.KeyRange{}}
}

// catchupOpts parameterize the locked catch-up (phase3) for its callers.
type catchupOpts struct {
	// writeObjCkpt records the per-object recovery checkpoint at the final
	// time. Crash recovery wants this (it is the object's resume point);
	// migration must NOT — the object checkpoint speaks for the whole
	// object, and a migration only guarantees the transferred range.
	writeObjCkpt bool
	// mark advances the servable horizon once the locked copy is drained
	// and durable: the whole object for crash recovery, just the
	// transferred segment for migration.
	mark func(ct tuple.Timestamp)
	// underLock, if set, runs while the donor table locks are still held,
	// after mark and before the object-online announce. Migration flips
	// catalog placement here so no commit can slip between the copied
	// horizon and the new routing.
	underLock func(finalT tuple.Timestamp) error
}
