package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// model is an in-memory reference implementation of the versioned table:
// committed history as (key → versions) with insertion/deletion times.
type model struct {
	versions map[int64][]modelVersion
}

type modelVersion struct {
	ins, del tuple.Timestamp
	v        int64
}

func newModel() *model { return &model{versions: map[int64][]modelVersion{}} }

func (m *model) insert(key, v int64, ts tuple.Timestamp) {
	m.versions[key] = append(m.versions[key], modelVersion{ins: ts, v: v})
}

func (m *model) deleteKey(key int64, ts tuple.Timestamp) bool {
	for i := range m.versions[key] {
		if m.versions[key][i].del == 0 {
			m.versions[key][i].del = ts
			return true
		}
	}
	return false
}

func (m *model) update(key, v int64, ts tuple.Timestamp) bool {
	if !m.deleteKey(key, ts) {
		return false
	}
	m.insert(key, v, ts)
	return true
}

// visibleAt returns key→value for the model's state as of ts.
func (m *model) visibleAt(ts tuple.Timestamp) map[int64]int64 {
	out := map[int64]int64{}
	for key, vs := range m.versions {
		for _, ver := range vs {
			if ver.ins <= ts && (ver.del == 0 || ver.del > ts) {
				out[key] = ver.v
			}
		}
	}
	return out
}

// TestRandomizedWorkloadCrashRecoverEquivalence drives a random mix of
// committed and aborted transactions, crashes a random worker at a random
// point (possibly after forcing dirty pages to disk), recovers it with
// HARBOR, and then checks that
//
//  1. both replicas are logically identical version-by-version, and
//  2. historical queries at every interesting timestamp match an
//     independent in-memory model of the committed history.
func TestRandomizedWorkloadCrashRecoverEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cl := newCluster(t, 2)
			m := newModel()
			desc := testDesc()
			vIdx := desc.FieldIndex("v")

			nextKey := int64(0)
			var commitTimes []tuple.Timestamp
			latest := tuple.Timestamp(0)
			crashAt := 20 + rng.Intn(40)
			crashed := false
			for step := 0; step < 90; step++ {
				if step == crashAt {
					// Half the time, push dirty pages (but no checkpoint)
					// so Phase 1 has real work; sometimes checkpoint too.
					switch rng.Intn(3) {
					case 1:
						_ = cl.Workers[0].Pool.FlushAll()
					case 2:
						_ = cl.Workers[0].CheckpointNow()
					}
					cl.Workers[0].Crash()
					crashed = true
				}
				tx := cl.Coord.Begin()
				ops := 1 + rng.Intn(3)
				type op struct {
					kind  int
					key   int64
					value int64
				}
				var staged []op
				// Victims for deletes/updates come from keys that are live
				// in the committed state and untouched by this transaction:
				// the warehouse model assigns timestamps at commit, so a
				// transaction does not see its own uncommitted writes
				// (§4.1), and key-based mutations only target committed
				// live versions.
				live := m.visibleAt(latest)
				var liveKeys []int64
				for k := range live {
					liveKeys = append(liveKeys, k)
				}
				touched := map[int64]bool{}
				failed := false
				for o := 0; o < ops && !failed; o++ {
					pickVictim := func() (int64, bool) {
						for tries := 0; tries < 8; tries++ {
							if len(liveKeys) == 0 {
								return 0, false
							}
							k := liveKeys[rng.Intn(len(liveKeys))]
							if !touched[k] {
								return k, true
							}
						}
						return 0, false
					}
					switch k := rng.Intn(10); {
					case k < 6 || nextKey == 0: // insert
						key := nextKey
						nextKey++
						v := rng.Int63n(1000)
						if err := tx.Insert(1, mk(key, v)); err != nil {
							failed = true
							break
						}
						touched[key] = true
						staged = append(staged, op{kind: 0, key: key, value: v})
					case k < 8: // delete a committed live key
						key, ok := pickVictim()
						if !ok {
							continue
						}
						if err := tx.DeleteKey(1, key); err != nil {
							failed = true
							break
						}
						touched[key] = true
						staged = append(staged, op{kind: 1, key: key})
					default: // update a committed live key
						key, ok := pickVictim()
						if !ok {
							continue
						}
						v := rng.Int63n(1000)
						if err := tx.UpdateKey(1, key, mk(key, v)); err != nil {
							failed = true
							break
						}
						touched[key] = true
						staged = append(staged, op{kind: 2, key: key, value: v})
					}
				}
				if failed || rng.Intn(8) == 0 {
					_ = tx.Abort()
					continue
				}
				ts, err := tx.Commit()
				if err != nil {
					continue // vote-abort (e.g. double delete): model unchanged
				}
				for _, o := range staged {
					switch o.kind {
					case 0:
						m.insert(o.key, o.value, ts)
					case 1:
						m.deleteKey(o.key, ts)
					case 2:
						m.update(o.key, o.value, ts)
					}
				}
				latest = ts
				commitTimes = append(commitTimes, ts)
			}
			if !crashed {
				cl.Workers[0].Crash()
			}
			recover(t, cl, 0, core.Options{})
			assertReplicasEqual(t, cl, 1)

			// Historical queries at a sample of commit times must match the
			// model (checked against the recovered replica specifically).
			samples := commitTimes
			if len(samples) > 12 {
				idx := rng.Perm(len(samples))[:12]
				var picked []tuple.Timestamp
				for _, i := range idx {
					picked = append(picked, samples[i])
				}
				samples = picked
			}
			for _, ts := range samples {
				rows, err := exec.Drain(exec.NewSeqScan(cl.Workers[0].Store,
					exec.ScanSpec{Table: 1, Vis: exec.Historical, AsOf: ts}))
				if err != nil {
					t.Fatal(err)
				}
				got := map[int64]int64{}
				for _, r := range rows {
					got[r.Key(desc)] = r.Values[vIdx].I64
				}
				want := m.visibleAt(ts)
				if len(got) != len(want) {
					t.Fatalf("asOf %d: %d rows, model has %d", ts, len(got), len(want))
				}
				for k, v := range want {
					if got[k] != v {
						t.Fatalf("asOf %d key %d: got %d want %d", ts, k, got[k], v)
					}
				}
			}
		})
	}
}

// TestTwoSimultaneousFailuresWithKTwo exercises 2-safety: a table on three
// workers survives two crashes and both sites recover (one of them from
// the single survivor, the other possibly from a mix).
func TestTwoSimultaneousFailuresWithKTwo(t *testing.T) {
	cl := newCluster(t, 3)
	for i := int64(1); i <= 30; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	cl.Workers[0].Crash()
	cl.Workers[1].Crash()
	// Still writable with one live replica.
	commitInsert(t, cl, 1, 31, 31)
	// Reads served by the survivor.
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 31 {
		t.Fatalf("rows with 2 failures = %d", len(rows))
	}
	// Recover both, one after the other.
	recover(t, cl, 0, core.Options{})
	commitInsert(t, cl, 1, 32, 32) // keep mutating between recoveries
	recover(t, cl, 1, core.Options{})
	assertReplicasEqual(t, cl, 1)
}

// TestRecoveryRepeatsPhase2UnderLoad verifies the §5.3 repetition: with a
// fast writer and a tiny repeat threshold, recovery should run Phase 2 more
// than once before taking locks.
func TestRecoveryRepeatsPhase2UnderLoad(t *testing.T) {
	cl := newCluster(t, 2)
	for i := int64(1); i <= 200; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	cl.Workers[0].Crash()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		k := int64(10_000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := cl.Coord.Begin()
			if err := tx.Insert(1, mk(k, 0)); err != nil {
				_ = tx.Abort()
				continue
			}
			if _, err := tx.Commit(); err == nil {
				k++
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	// A negative threshold repeats Phase 2 whenever the HWM advanced at
	// all between rounds; the continuous writer guarantees it does.
	stats, err := core.New(w, cl.Catalog).RecoverSite(core.Options{RepeatThreshold: -1, MaxRounds: 4})
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects[0].Rounds < 2 {
		t.Fatalf("expected repeated Phase 2 under load, got %d round(s)", stats.Objects[0].Rounds)
	}
	assertReplicasEqual(t, cl, 1)
}

// TestNonIdenticalReplicaRecovery recovers a replica whose physical format
// (segment size) differs from its buddy's — §3.1's flexibility claim.
func TestNonIdenticalReplicaRecovery(t *testing.T) {
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     2,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		LockTimeout: time.Second,
		BaseDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	// Same logical table, different segment sizes per replica.
	if err := cl.Coord.CreateTable(
		&catalog.TableSpec{ID: 1, Name: "t1", Desc: testDesc(), SegPages: 4},
		catalog.Replica{Site: testutil.WorkerSiteID(0), Table: 1, Range: expr.FullKeyRange(), SegPages: 1},
		catalog.Replica{Site: testutil.WorkerSiteID(1), Table: 1, Range: expr.FullKeyRange(), SegPages: 16},
	); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 300; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	w0segs, _ := segCount(cl, 0)
	w1segs, _ := segCount(cl, 1)
	if w0segs <= w1segs {
		t.Fatalf("expected different physical formats: %d vs %d segments", w0segs, w1segs)
	}
	cl.Workers[0].Crash()
	recover(t, cl, 0, core.Options{})
	assertReplicasEqual(t, cl, 1)
}

func segCount(cl *testutil.Cluster, i int) (int, error) {
	tb, err := cl.Workers[i].Mgr.Get(1)
	if err != nil {
		return 0, err
	}
	return tb.Heap.NumSegments(), nil
}
