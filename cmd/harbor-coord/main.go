// Command harbor-coord runs the coordinator site as a standalone process
// and optionally drives a demonstration workload against already-running
// harbor-worker processes.
//
//	harbor-coord -addr :7100 -dir /var/lib/harbor/site0 \
//	    -sites "1=w1:7101,2=w2:7102" -protocol opt3pc \
//	    -demo -demo-txns 1000
//
// Without -demo the coordinator just serves its recovery/outcome endpoints
// and waits; embedders normally use the library API (package harbor)
// instead.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/coord"
	"harbor/internal/expr"
	"harbor/internal/obs"
	"harbor/internal/sim"
	"harbor/internal/txn"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address for the recovery server")
	dir := flag.String("dir", "", "coordinator log directory (2PC protocols)")
	sites := flag.String("sites", "", "worker layout: id=host:port,...")
	protocol := flag.String("protocol", "opt3pc", "commit protocol: 2pc|opt2pc|3pc|opt3pc")
	demo := flag.Bool("demo", false, "create a demo table and run an insert workload")
	demoTxns := flag.Int("demo-txns", 1000, "transactions for -demo")
	debugAddr := flag.String("debug-addr", "", "serve /debug/harbor metrics+traces and pprof on this address (empty disables)")
	flag.Parse()

	var p txn.Protocol
	switch strings.ToLower(*protocol) {
	case "2pc":
		p = txn.TwoPC
	case "opt2pc":
		p = txn.OptTwoPC
	case "3pc":
		p = txn.ThreePC
	case "opt3pc":
		p = txn.OptThreePC
	default:
		fmt.Fprintf(os.Stderr, "harbor-coord: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
	cat := catalog.New(0)
	var workerIDs []catalog.SiteID
	if *sites != "" {
		for _, part := range strings.Split(*sites, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				fmt.Fprintf(os.Stderr, "harbor-coord: bad -sites entry %q\n", part)
				os.Exit(2)
			}
			id, err := strconv.Atoi(kv[0])
			if err != nil {
				fmt.Fprintf(os.Stderr, "harbor-coord: bad site id %q\n", kv[0])
				os.Exit(2)
			}
			cat.AddSite(catalog.SiteID(id), kv[1])
			if id != 0 {
				workerIDs = append(workerIDs, catalog.SiteID(id))
			}
		}
	}
	co, err := coord.New(coord.Config{
		Site: 0, Dir: *dir, Addr: *addr, Protocol: p, Catalog: cat, GroupCommit: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "harbor-coord:", err)
		os.Exit(1)
	}
	cat.AddSite(0, co.Addr())
	fmt.Printf("harbor-coord: serving on %s (protocol %s, %d workers)\n", co.Addr(), p, len(workerIDs))
	if *debugAddr != "" {
		if err := serveDebug(*debugAddr, obs.DebugMux(co.Obs(), co.Trace())); err != nil {
			fmt.Fprintln(os.Stderr, "harbor-coord:", err)
			os.Exit(1)
		}
	}

	if *demo {
		if err := runDemo(co, cat, workerIDs, *demoTxns); err != nil {
			fmt.Fprintln(os.Stderr, "harbor-coord: demo failed:", err)
			os.Exit(1)
		}
		co.Close()
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("harbor-coord: shutting down")
	co.Close()
}

func runDemo(co *coord.Coordinator, cat *catalog.Catalog, workers []catalog.SiteID, n int) error {
	if len(workers) == 0 {
		return fmt.Errorf("demo needs at least one worker in -sites")
	}
	desc := sim.BenchDesc()
	spec := &catalog.TableSpec{ID: 1, Name: "demo", Desc: desc, SegPages: 256}
	var reps []catalog.Replica
	for _, w := range workers {
		reps = append(reps, catalog.Replica{Site: w, Table: 1, Range: expr.FullKeyRange(), SegPages: 256})
	}
	if err := co.CreateTable(spec, reps...); err != nil {
		return err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		tx := co.Begin()
		if err := tx.Insert(1, sim.BenchTuple(desc, int64(i))); err != nil {
			return err
		}
		if _, err := tx.Commit(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("harbor-coord: demo committed %d txns in %v (%.0f tps, K=%d replicas)\n",
		n, elapsed, float64(n)/elapsed.Seconds(), len(workers))
	rows, err := co.Scan(1, coord.QueryOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("harbor-coord: demo table holds %d rows\n", len(rows))
	return nil
}

// serveDebug starts the observability endpoint, printing the bound address
// so callers using :0 can find it.
func serveDebug(addr string, mux *http.ServeMux) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug listener: %w", err)
	}
	fmt.Printf("debug: /debug/harbor on http://%s/debug/harbor\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}
