package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/sim"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// scanResult is one framing's distributed-scan throughput measurement.
type scanResult struct {
	RowsPerSec float64 `json:"rows_per_sec"`
	TotalRows  int     `json:"total_rows"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// recModeResult is one framing's Phase 2/3 catch-up profile.
type recModeResult struct {
	Phase2UpdateMS float64 `json:"phase2_update_ms"`
	Phase2InsertMS float64 `json:"phase2_insert_ms"`
	Phase3MS       float64 `json:"phase3_ms"`
	TotalMS        float64 `json:"total_ms"`
	Inserts        int     `json:"inserts"`
	Deletes        int     `json:"deletes"`
}

// runScan benchmarks the batched tuple pipeline against its tuple-at-a-time
// ablation on the two paths it was built for: a distributed historical scan
// merged at the coordinator, and a Phase 2 recovery catch-up streamed from a
// buddy. Both framings run in the same process against identically seeded
// clusters, so the ratio isolates the framing. Emits BENCH_scan.json-shaped
// JSON on stdout.
func runScan(rows, iters int) error {
	if rows < 4 {
		rows = 4
	}
	if iters < 1 {
		iters = 1
	}
	batched, err := runScanMode(rows, iters, false)
	if err != nil {
		return err
	}
	legacy, err := runScanMode(rows, iters, true)
	if err != nil {
		return err
	}
	recRows := rows / 4
	recBatched, err := runScanRecovery(recRows, false)
	if err != nil {
		return err
	}
	recLegacy, err := runScanRecovery(recRows, true)
	if err != nil {
		return err
	}

	out := struct {
		Bench        string     `json:"bench"`
		Workers      int        `json:"workers"`
		Rows         int        `json:"rows"`
		Iters        int        `json:"iters"`
		Batched      scanResult `json:"batched"`
		TupleAtATime scanResult `json:"tuple_at_a_time"`
		ScanSpeedup  float64    `json:"scan_speedup"`
		Recovery     struct {
			Rows          int           `json:"rows"`
			Batched       recModeResult `json:"batched"`
			TupleAtATime  recModeResult `json:"tuple_at_a_time"`
			Phase2Speedup float64       `json:"phase2_speedup"`
		} `json:"recovery"`
	}{
		Bench:        "scan",
		Workers:      4,
		Rows:         rows,
		Iters:        iters,
		Batched:      batched,
		TupleAtATime: legacy,
	}
	if batched.ElapsedMS > 0 {
		out.ScanSpeedup = legacy.ElapsedMS / batched.ElapsedMS
	}
	out.Recovery.Rows = recRows
	out.Recovery.Batched = recBatched
	out.Recovery.TupleAtATime = recLegacy
	if p2 := recBatched.Phase2UpdateMS + recBatched.Phase2InsertMS; p2 > 0 {
		out.Recovery.Phase2Speedup = (recLegacy.Phase2UpdateMS + recLegacy.Phase2InsertMS) / p2
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runScanMode measures one framing's distributed-scan throughput: a 4-way
// range-partitioned table bulk-loaded with rows/4 tuples per worker, scanned
// historically (unlocked) through the coordinator's k-way merge.
func runScanMode(rows, iters int, tupleAtATime bool) (scanResult, error) {
	var res scanResult
	dir := tmp()
	defer os.RemoveAll(dir)
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:    4,
		Protocol:   txn.OptThreePC,
		Mode:       worker.HARBOR,
		BaseDir:    dir,
		PoolFrames: 1 << 14,
	})
	if err != nil {
		return res, err
	}
	defer cl.Close()
	desc := sim.BenchDesc()
	q := int64(rows / 4)
	if err := cl.CreateRangePartitionedTable(1, desc, 64, q, 2*q, 3*q); err != nil {
		return res, err
	}
	// Bulk-load each partition directly with pre-stamped committed tuples
	// (the §4.2 fast path); segments match the table's 64-page geometry
	// closely enough via fixed-size chunks.
	const chunk = 8192
	for wi := 0; wi < 4; wi++ {
		tb, err := cl.Workers[wi].Mgr.Get(1)
		if err != nil {
			return res, err
		}
		lo, hi := int64(wi)*q, int64(wi+1)*q
		if wi == 3 {
			hi = int64(rows)
		}
		for lo < hi {
			n := hi - lo
			if n > chunk {
				n = chunk
			}
			batch := make([]tuple.Tuple, n)
			for i := int64(0); i < n; i++ {
				tp := sim.BenchTuple(desc, lo+i)
				tp.SetInsTS(1)
				batch[i] = tp
			}
			if _, err := tb.Heap.BulkLoadSegment(batch); err != nil {
				return res, err
			}
			lo += n
		}
	}
	cl.Coord.Authority.Advance(2)
	for _, w := range cl.Workers {
		w.SeedAppliedTS(2)
	}
	opt := coord.QueryOptions{Historical: true, AsOf: 1, TupleAtATime: tupleAtATime}
	count := 0
	sink := func(batch []tuple.Tuple) error {
		count += len(batch)
		return nil
	}
	// One untimed warm-up scan pulls every page through the buffer pools so
	// the timed iterations measure the pipeline, not cold disk reads.
	if err := cl.Coord.ScanStream(1, opt, sink); err != nil {
		return res, err
	}
	if count != rows {
		return res, fmt.Errorf("scan bench: warm-up saw %d rows, want %d", count, rows)
	}
	count = 0
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := cl.Coord.ScanStream(1, opt, sink); err != nil {
			return res, err
		}
	}
	elapsed := time.Since(start)
	if count != rows*iters {
		return res, fmt.Errorf("scan bench: saw %d rows across %d iters, want %d", count, iters, rows*iters)
	}
	res.TotalRows = count
	res.ElapsedMS = elapsed.Seconds() * 1000
	res.RowsPerSec = float64(count) / elapsed.Seconds()
	return res, nil
}

// runScanRecovery measures one framing's Phase 2 catch-up: a 2-worker
// replicated table preloaded identically on both sites and checkpointed,
// then worker 0 crashes and misses a delta workload of deletions (every
// 10th preloaded key — the keys-only stream) and fresh inserts (rows/5 —
// the full-row stream) that commits against the surviving buddy. Recovery
// must replay exactly that delta across the wire.
func runScanRecovery(rows int, tupleAtATime bool) (recModeResult, error) {
	var res recModeResult
	dir := tmp()
	defer os.RemoveAll(dir)
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     2,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		BaseDir:     dir,
		PoolFrames:  1 << 16,
		LockTimeout: 5 * time.Second,
	})
	if err != nil {
		return res, err
	}
	defer cl.Close()
	desc := sim.BenchDesc()
	if err := cl.CreateReplicatedTable(1, desc, 64, 0, 1); err != nil {
		return res, err
	}
	const chunk = 8192
	for wi := 0; wi < 2; wi++ {
		tb, err := cl.Workers[wi].Mgr.Get(1)
		if err != nil {
			return res, err
		}
		for lo := 0; lo < rows; lo += chunk {
			n := rows - lo
			if n > chunk {
				n = chunk
			}
			batch := make([]tuple.Tuple, n)
			for i := 0; i < n; i++ {
				tp := sim.BenchTuple(desc, int64(lo+i))
				tp.SetInsTS(1)
				batch[i] = tp
			}
			if _, err := tb.Heap.BulkLoadSegment(batch); err != nil {
				return res, err
			}
		}
	}
	cl.Coord.Authority.Advance(2)
	for _, w := range cl.Workers {
		w.SeedAppliedTS(2)
		if err := w.CheckpointNow(); err != nil {
			return res, err
		}
		if err := w.Mgr.RebuildIndexes(); err != nil {
			return res, err
		}
	}

	// Worker 0 goes down, then misses the delta workload: the buddy alone
	// absorbs the deletions and inserts Phase 2 will have to stream back.
	cl.Workers[0].Crash()
	deletes, inserts := rows/10, rows/5
	const perTxn = 100
	commit := func(total int, op func(tx *coord.Txn, i int) error) error {
		for lo := 0; lo < total; lo += perTxn {
			hi := lo + perTxn
			if hi > total {
				hi = total
			}
			tx := cl.Coord.Begin()
			for i := lo; i < hi; i++ {
				if err := op(tx, i); err != nil {
					return err
				}
			}
			if _, err := tx.Commit(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := commit(deletes, func(tx *coord.Txn, i int) error {
		return tx.DeleteKey(1, int64(i*10))
	}); err != nil {
		return res, err
	}
	if err := commit(inserts, func(tx *coord.Txn, i int) error {
		return tx.Insert(1, sim.BenchTuple(desc, int64(1_000_000+i)))
	}); err != nil {
		return res, err
	}

	w, err := cl.RestartWorker(0)
	if err != nil {
		return res, err
	}
	start := time.Now()
	stats, err := core.New(w, cl.Catalog).RecoverSite(core.Options{TupleAtATime: tupleAtATime})
	if err != nil {
		return res, err
	}
	total := time.Since(start)
	for _, o := range stats.Objects {
		res.Phase2UpdateMS += o.Phase2Update.Seconds() * 1000
		res.Phase2InsertMS += o.Phase2Insert.Seconds() * 1000
		res.Phase3MS += o.Phase3.Seconds() * 1000
		res.Inserts += o.Phase2Inserts + o.Phase3Inserts
		res.Deletes += o.Phase2Deletes + o.Phase3Deletes
	}
	res.TotalMS = total.Seconds() * 1000
	if res.Inserts < inserts {
		return res, fmt.Errorf("scan bench: recovery copied %d inserts, want >= %d", res.Inserts, inserts)
	}
	if res.Deletes < deletes {
		return res, fmt.Errorf("scan bench: recovery copied %d deletes, want >= %d", res.Deletes, deletes)
	}
	return res, nil
}
