package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"harbor/internal/coord"
	"harbor/internal/exec"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// aggGroups is the group-column cardinality of the aggregate benchmark:
// small against the row count, so pushdown ships O(groups) partial states
// where the ablation ships O(rows) tuples.
const aggGroups = 64

// aggBenchDesc is the aggregate benchmark schema: a key, a low-cardinality
// group column, and a summed value column.
func aggBenchDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "g", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int64},
	)
}

// aggModeResult is one path's (pushdown or ablation) measurement.
type aggModeResult struct {
	ElapsedMS   float64 `json:"elapsed_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	RowsShipped int64   `json:"rows_shipped"`
	Frames      int64   `json:"frames,omitempty"`
}

// runAgg benchmarks aggregate pushdown against its ship-every-row ablation:
// a grouped sum over a 4-way range-partitioned table, the 100k-row query the
// CI gate watches. Both paths run in the same process against the same
// cluster and return identical rows; the ratios isolate the pushdown. Emits
// BENCH_agg.json-shaped JSON on stdout.
func runAgg(rows, iters int) error {
	if rows < aggGroups {
		rows = aggGroups
	}
	if iters < 1 {
		iters = 1
	}
	dir := tmp()
	defer os.RemoveAll(dir)
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:    4,
		Protocol:   txn.OptThreePC,
		Mode:       worker.HARBOR,
		BaseDir:    dir,
		PoolFrames: 1 << 14,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	desc := aggBenchDesc()
	q := int64(rows / 4)
	if err := cl.CreateRangePartitionedTable(1, desc, 64, q, 2*q, 3*q); err != nil {
		return err
	}
	// Bulk-load each partition directly with pre-stamped committed tuples,
	// as the scan bench does.
	const chunk = 8192
	for wi := 0; wi < 4; wi++ {
		tb, err := cl.Workers[wi].Mgr.Get(1)
		if err != nil {
			return err
		}
		lo, hi := int64(wi)*q, int64(wi+1)*q
		if wi == 3 {
			hi = int64(rows)
		}
		for lo < hi {
			n := hi - lo
			if n > chunk {
				n = chunk
			}
			batch := make([]tuple.Tuple, n)
			for i := int64(0); i < n; i++ {
				id := lo + i
				tp := tuple.MustMake(desc, tuple.VInt(id), tuple.VInt(id%aggGroups), tuple.VInt(id))
				tp.SetInsTS(1)
				batch[i] = tp
			}
			if _, err := tb.Heap.BulkLoadSegment(batch); err != nil {
				return err
			}
			lo += n
		}
	}
	cl.Coord.Authority.Advance(2)
	for _, w := range cl.Workers {
		w.SeedAppliedTS(2)
	}

	plan := exec.AggPlan{GroupField: desc.FieldIndex("g"), Aggs: []exec.AggSpec{
		{Fn: exec.Count},
		{Fn: exec.Sum, Field: desc.FieldIndex("v")},
	}}
	opt := coord.QueryOptions{Historical: true, AsOf: 1}

	run := func(noPushdown bool) (aggModeResult, []tuple.Tuple, error) {
		var res aggModeResult
		o := opt
		o.NoPushdown = noPushdown
		// One untimed warm-up pulls every page through the buffer pools.
		want, err := cl.Coord.Aggregate(1, o, plan)
		if err != nil {
			return res, nil, err
		}
		if len(want) != aggGroups {
			return res, nil, fmt.Errorf("agg bench: got %d groups, want %d", len(want), aggGroups)
		}
		snap := cl.Coord.Obs().Snapshot()
		rowsBefore := snap.Counters["coord.agg.rows_shipped"] + snap.Counters["coord.scan.rows"]
		framesBefore := snap.Counters["coord.agg.frames"]
		samples := make([]float64, iters)
		start := time.Now()
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			got, err := cl.Coord.Aggregate(1, o, plan)
			if err != nil {
				return res, nil, err
			}
			if len(got) != len(want) {
				return res, nil, fmt.Errorf("agg bench: iteration returned %d groups, want %d", len(got), len(want))
			}
			samples[i] = time.Since(t0).Seconds() * 1000
		}
		res.ElapsedMS = time.Since(start).Seconds() * 1000
		snap = cl.Coord.Obs().Snapshot()
		// Per-iteration average, so pushdown and ablation compare like for
		// like however many timed iterations ran.
		res.RowsShipped = (snap.Counters["coord.agg.rows_shipped"] + snap.Counters["coord.scan.rows"] - rowsBefore) / int64(iters)
		res.Frames = (snap.Counters["coord.agg.frames"] - framesBefore) / int64(iters)
		sort.Float64s(samples)
		res.P50MS = samples[len(samples)/2]
		res.P95MS = samples[(len(samples)*95)/100]
		return res, want, nil
	}

	push, pushRows, err := run(false)
	if err != nil {
		return err
	}
	abl, ablRows, err := run(true)
	if err != nil {
		return err
	}
	// The two paths must agree before their speeds are worth comparing.
	if len(pushRows) != len(ablRows) {
		return fmt.Errorf("agg bench: pushdown %d groups != ablation %d", len(pushRows), len(ablRows))
	}
	for i := range pushRows {
		for j := range pushRows[i].Values {
			if pushRows[i].Values[j].I64 != ablRows[i].Values[j].I64 {
				return fmt.Errorf("agg bench: group %d differs between pushdown and ablation", i)
			}
		}
	}

	out := struct {
		Bench                string        `json:"bench"`
		Workers              int           `json:"workers"`
		Rows                 int           `json:"rows"`
		Groups               int           `json:"groups"`
		Iters                int           `json:"iters"`
		Pushdown             aggModeResult `json:"pushdown"`
		NoPushdown           aggModeResult `json:"no_pushdown"`
		RowsShippedReduction float64       `json:"rows_shipped_reduction"`
		Speedup              float64       `json:"speedup"`
	}{
		Bench:      "agg",
		Workers:    4,
		Rows:       rows,
		Groups:     aggGroups,
		Iters:      iters,
		Pushdown:   push,
		NoPushdown: abl,
	}
	if push.RowsShipped > 0 {
		out.RowsShippedReduction = float64(abl.RowsShipped) / float64(push.RowsShipped)
	}
	if push.ElapsedMS > 0 {
		out.Speedup = abl.ElapsedMS / push.ElapsedMS
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
