package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/expr"
	"harbor/internal/sim"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// The rebalance bench measures what online scale-out buys: one table split
// into rebalParts key partitions, each 2-way replicated, starts packed onto
// 4 sites; core.Migrate then spreads the same partitions over 6 and then 8
// sites while the cluster serves, and at each stage the bench measures
// aggregate scan throughput (concurrent full-table historical scans) and
// commit throughput (concurrent single-update streams over random keys).
// Every byte of data movement goes through the segment-transfer engine —
// the 6- and 8-site placements exist only because Migrate built them.
//
// Per-site pool frames are deliberately sized so a 4-site placement's
// per-site share (half the table, both replicas counted) overflows the
// buffer pool while an 8-site share fits: the scaling measured is the
// warehouse effect of scale-out — the working set drops back into memory —
// not raw parallelism, which a single bench host could not exhibit anyway.
const (
	rebalParts       = 8
	rebalReplicas    = 2
	rebalScanClients = 4
	rebalCommitConc  = 4
	rebalSegPages    = 64
)

// rebalStage is one placement's measurement in the scale-out bench output.
type rebalStage struct {
	Sites          int     `json:"sites"`
	MigratedRanges int     `json:"migrated_ranges"`
	MigratedRows   int     `json:"migrated_rows"`
	MigrateMS      float64 `json:"migrate_ms"`
	Scans          int     `json:"scans"`
	ScanRowsPerSec float64 `json:"scan_rows_per_sec"`
	Commits        int     `json:"commits"`
	CommitTPS      float64 `json:"commit_tps"`
}

// rebalSite maps partition p's replica r to a worker index under an n-site
// placement: primaries stride the ring, the buddy lands one site over.
func rebalSite(p, r, n int) int { return (p + r) % n }

// rebalBounds returns the partition bounds: rebalParts+1 ascending keys with
// the outer bounds unbounded so the partitions cover the full key space.
func rebalBounds(rows int) []int64 {
	full := expr.FullKeyRange()
	bounds := make([]int64, rebalParts+1)
	bounds[0] = full.Lo
	for p := 1; p < rebalParts; p++ {
		bounds[p] = int64(p * (rows / rebalParts))
	}
	bounds[rebalParts] = full.Hi
	return bounds
}

// runRebalance builds the 4-site packed placement, preloads it, then walks
// the 4 → 6 → 8 scale-out, measuring at each stage. Emits
// BENCH_rebalance.json-shaped JSON on stdout.
func runRebalance(rows, seconds int) error {
	if rows < rebalParts*1000 {
		rows = rebalParts * 1000
	}
	rows -= rows % rebalParts
	measure := time.Duration(seconds) * time.Second / 6 // 3 stages × 2 metrics
	if measure < 500*time.Millisecond {
		measure = 500 * time.Millisecond
	}
	dir := tmp()
	defer os.RemoveAll(dir)
	// Pool sizing: a 4-site placement puts rows/2 of the table's rows on
	// each site (4 partition replicas of rows/8 each, ~rows/106 pages at
	// 53 rows/page); an 8-site placement halves that. Size the pool so the
	// 8-site per-site share fits with ~25% headroom (commit windows grow
	// the heap a little) while the 4-site share overflows it roughly 2x —
	// scale-out then shows up as the working set dropping into memory.
	poolFrames := rows / 170
	if poolFrames < 256 {
		poolFrames = 256
	}
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     4,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		BaseDir:     dir,
		PoolFrames:  poolFrames,
		LockTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	desc := sim.BenchDesc()
	bounds := rebalBounds(rows)
	partRange := func(p int) expr.KeyRange {
		return expr.KeyRange{Lo: bounds[p], Hi: bounds[p+1]}
	}

	// The packed placement: every partition replica on the first 4 sites.
	spec := &catalog.TableSpec{ID: 1, Name: "t1", Desc: desc, SegPages: rebalSegPages}
	var reps []catalog.Replica
	for p := 0; p < rebalParts; p++ {
		for r := 0; r < rebalReplicas; r++ {
			reps = append(reps, catalog.Replica{
				Site:     testutil.WorkerSiteID(rebalSite(p, r, 4)),
				Table:    1,
				Range:    partRange(p),
				SegPages: rebalSegPages,
			})
		}
	}
	if err := cl.Coord.CreateTable(spec, reps...); err != nil {
		return err
	}

	// Preload each site with exactly the partitions its replicas cover.
	const chunk = 8192
	for wi := 0; wi < 4; wi++ {
		tb, err := cl.Workers[wi].Mgr.Get(1)
		if err != nil {
			return err
		}
		for p := 0; p < rebalParts; p++ {
			held := false
			for r := 0; r < rebalReplicas; r++ {
				held = held || rebalSite(p, r, 4) == wi
			}
			if !held {
				continue
			}
			lo, hi := p*(rows/rebalParts), (p+1)*(rows/rebalParts)
			for klo := lo; klo < hi; klo += chunk {
				n := hi - klo
				if n > chunk {
					n = chunk
				}
				batch := make([]tuple.Tuple, n)
				for i := 0; i < n; i++ {
					tp := sim.BenchTuple(desc, int64(klo+i))
					tp.SetInsTS(1)
					batch[i] = tp
				}
				if _, err := tb.Heap.BulkLoadSegment(batch); err != nil {
					return err
				}
			}
		}
	}
	cl.Coord.Authority.Advance(2)
	for _, w := range cl.Workers {
		w.SeedAppliedTS(2)
		if err := w.CheckpointNow(); err != nil {
			return err
		}
		if err := w.Mgr.RebuildIndexes(); err != nil {
			return err
		}
	}

	out := struct {
		Bench            string       `json:"bench"`
		Rows             int          `json:"rows"`
		Partitions       int          `json:"partitions"`
		Replication      int          `json:"replication"`
		PoolFrames       int          `json:"pool_frames_per_site"`
		ScanClients      int          `json:"scan_clients"`
		CommitStreams    int          `json:"commit_streams"`
		Stages           []rebalStage `json:"stages"`
		ScanScaling8v4   float64      `json:"scan_scaling_8v4"`
		CommitScaling8v4 float64      `json:"commit_scaling_8v4"`
	}{
		Bench:         "rebalance",
		Rows:          rows,
		Partitions:    rebalParts,
		Replication:   rebalReplicas,
		PoolFrames:    poolFrames,
		ScanClients:   rebalScanClients,
		CommitStreams: rebalCommitConc,
	}

	for _, sites := range []int{4, 6, 8} {
		st := rebalStage{Sites: sites}
		if sites > len(cl.Workers) {
			// Cold joiners first, then the placement diff through Migrate:
			// every replica whose ring slot moves under the wider placement
			// streams over (and its donor copy is withdrawn and purged).
			for len(cl.Workers) < sites {
				if _, err := cl.AddWorker(); err != nil {
					return err
				}
			}
			from := out.Stages[len(out.Stages)-1].Sites
			t0 := time.Now()
			for p := 0; p < rebalParts; p++ {
				for r := 0; r < rebalReplicas; r++ {
					oldW, newW := rebalSite(p, r, from), rebalSite(p, r, sites)
					if oldW == newW {
						continue
					}
					mst, err := core.Migrate(cl.Workers[newW], cl.Catalog, core.MigrateSpec{
						Table:    1,
						Range:    partRange(p),
						DropFrom: testutil.WorkerSiteID(oldW),
						SegPages: rebalSegPages,
					}, core.Options{Parallel: true})
					if err != nil {
						return fmt.Errorf("migrating partition %d replica %d to worker %d: %w", p, r, newW, err)
					}
					st.MigratedRanges++
					st.MigratedRows += mst.Phase2Inserts + mst.Phase3Inserts
				}
			}
			st.MigrateMS = time.Since(t0).Seconds() * 1000
		}

		// Sanity: the placement must still serve the whole table exactly.
		got, err := cl.Coord.Scan(1, coord.QueryOptions{Historical: true})
		if err != nil {
			return fmt.Errorf("%d-site placement scan: %w", sites, err)
		}
		if len(got) != rows {
			return fmt.Errorf("%d-site placement scan returned %d rows, want %d", sites, len(got), rows)
		}

		st.Scans, st.ScanRowsPerSec, err = rebalScanThroughput(cl, measure)
		if err != nil {
			return fmt.Errorf("%d-site scan measurement: %w", sites, err)
		}
		st.Commits, st.CommitTPS, err = rebalCommitThroughput(cl, desc, rows, measure)
		if err != nil {
			return fmt.Errorf("%d-site commit measurement: %w", sites, err)
		}
		out.Stages = append(out.Stages, st)
	}

	first, last := out.Stages[0], out.Stages[len(out.Stages)-1]
	if first.ScanRowsPerSec > 0 {
		out.ScanScaling8v4 = last.ScanRowsPerSec / first.ScanRowsPerSec
	}
	if first.CommitTPS > 0 {
		out.CommitScaling8v4 = last.CommitTPS / first.CommitTPS
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// rebalScanThroughput runs concurrent full-table historical scans for the
// window and returns completed scans plus aggregate rows per second. The
// counting sink keeps coordinator-side cost at a row-count increment, so the
// measured rate is dominated by worker-side page reads — the cost the
// placement actually changes.
func rebalScanThroughput(cl *testutil.Cluster, window time.Duration) (int, float64, error) {
	var (
		scans    atomic.Int64
		rowsRead atomic.Int64
		firstErr atomic.Value
	)
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < rebalScanClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				n := 0
				err := cl.Coord.ScanStream(1, coord.QueryOptions{Historical: true},
					func(rows []tuple.Tuple) error {
						n += len(rows)
						return nil
					})
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				scans.Add(1)
				rowsRead.Add(int64(n))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, 0, err
	}
	return int(scans.Load()), float64(rowsRead.Load()) / elapsed.Seconds(), nil
}

// rebalCommitThroughput runs concurrent single-update commit streams for
// the window and returns committed transactions plus transactions per
// second. Stream s draws uniformly from keys ≡ s (mod streams): every
// stream spreads over all partitions (so the offered load lands on
// whatever placement the stage built) but no two streams ever race on one
// key — the bench measures throughput, not same-key conflict handling.
func rebalCommitThroughput(cl *testutil.Cluster, desc *tuple.Desc, rows int, window time.Duration) (int, float64, error) {
	var (
		commits  atomic.Int64
		firstErr atomic.Value
	)
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < rebalCommitConc; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s) + 1))
			for time.Now().Before(deadline) {
				key := rng.Int63n(int64(rows/rebalCommitConc))*rebalCommitConc + int64(s)
				tx := cl.Coord.Begin()
				if err := tx.UpdateKey(1, key, sim.BenchTuple(desc, key)); err != nil {
					_ = tx.Abort()
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if _, err := tx.Commit(); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				commits.Add(1)
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, 0, err
	}
	return int(commits.Load()), float64(commits.Load()) / elapsed.Seconds(), nil
}
