package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"harbor/internal/comm"
	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/sim"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// recObjResult is one object's recovery decomposition in the MTTR-split
// bench output.
type recObjResult struct {
	Table    int32   `json:"table"`
	Phase1MS float64 `json:"phase1_ms"`
	Phase2MS float64 `json:"phase2_ms"`
	Phase3MS float64 `json:"phase3_ms"`
	TotalMS  float64 `json:"total_ms"`
	Inserts  int     `json:"inserts"`
	Deletes  int     `json:"deletes"`
}

// runRecovery measures the MTTR split the per-object recovery state machine
// buys: on a crashed site holding several objects, the wall-clock until the
// FIRST historical query is answered by the recovering site (the object the
// query fault-ins publishes its copied-through horizon right after its
// Phase 1 rewind) versus the wall-clock until the WHOLE site has caught up.
// Before the state machine both numbers were the same: the site-level flag
// kept every read refused until the last object finished.
//
// The site holds the classic warehouse shape: table 1 is a small dimension
// table — the one the waiting queries actually want — and the remaining
// objects are fact tables carrying the bulk of the missed delta, so full
// catch-up is dominated by work the first query never needed. Emits
// BENCH_recovery.json-shaped JSON on stdout.
func runRecovery(rows, objects int) error {
	if objects < 2 {
		objects = 2
	}
	perObj := rows / objects
	if perObj < 1000 {
		perObj = 1000
	}
	dimRows := perObj / 10
	if dimRows < 1000 {
		dimRows = 1000
	}
	rowsFor := func(obj int) int {
		if obj == 1 {
			return dimRows
		}
		return perObj
	}
	dir := tmp()
	defer os.RemoveAll(dir)
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     2,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		BaseDir:     dir,
		PoolFrames:  1 << 16,
		LockTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	desc := sim.BenchDesc()
	const chunk = 8192
	for obj := 1; obj <= objects; obj++ {
		if err := cl.CreateReplicatedTable(int32(obj), desc, 64, 0, 1); err != nil {
			return err
		}
		for wi := 0; wi < 2; wi++ {
			tb, err := cl.Workers[wi].Mgr.Get(int32(obj))
			if err != nil {
				return err
			}
			objRows := rowsFor(obj)
			for lo := 0; lo < objRows; lo += chunk {
				n := objRows - lo
				if n > chunk {
					n = chunk
				}
				batch := make([]tuple.Tuple, n)
				for i := 0; i < n; i++ {
					tp := sim.BenchTuple(desc, int64(lo+i))
					tp.SetInsTS(1)
					batch[i] = tp
				}
				if _, err := tb.Heap.BulkLoadSegment(batch); err != nil {
					return err
				}
			}
		}
	}
	cl.Coord.Authority.Advance(2)
	for _, w := range cl.Workers {
		w.SeedAppliedTS(2)
		if err := w.CheckpointNow(); err != nil {
			return err
		}
		if err := w.Mgr.RebuildIndexes(); err != nil {
			return err
		}
	}

	// Worker 0 goes down; every object misses a delta proportional to its
	// size, so full catch-up is dominated by the fact tables' copy work.
	cl.Workers[0].Crash()
	const perTxn = 100
	commit := func(total int, op func(tx *coord.Txn, i int) error) error {
		for lo := 0; lo < total; lo += perTxn {
			hi := lo + perTxn
			if hi > total {
				hi = total
			}
			tx := cl.Coord.Begin()
			for i := lo; i < hi; i++ {
				if err := op(tx, i); err != nil {
					return err
				}
			}
			if _, err := tx.Commit(); err != nil {
				return err
			}
		}
		return nil
	}
	var totalDeletes, totalInserts int
	for obj := 1; obj <= objects; obj++ {
		table := int32(obj)
		deletes, inserts := rowsFor(obj)/10, rowsFor(obj)/5
		totalDeletes += deletes
		totalInserts += inserts
		if err := commit(deletes, func(tx *coord.Txn, i int) error {
			return tx.DeleteKey(table, int64(i*10))
		}); err != nil {
			return err
		}
		if err := commit(inserts, func(tx *coord.Txn, i int) error {
			return tx.Insert(table, sim.BenchTuple(desc, int64(1_000_000+i)))
		}); err != nil {
			return err
		}
	}

	w, err := cl.RestartWorker(0)
	if err != nil {
		return err
	}
	// The query client: hammer the recovering site with the historical read
	// it actually wants (table 1 as of the preloaded snapshot) until one is
	// served. Each refusal fault-ins the object, so the recovery driver
	// pulls table 1 to the front of its queue — the bench measures the
	// priority path, not queue luck.
	addr := w.Addr()
	// The probe query is a realistic first query: a historical range slice
	// of the hot table, not a full-table drain — time-to-first-query should
	// measure when the site starts answering, not how long one maximal scan
	// takes while recovery saturates the disk.
	const probeKeys = 1000
	probeRng := expr.KeyRange{Lo: 0, Hi: probeKeys}
	// Prime the read-hotness counter before the driver starts: the queries
	// were arriving before the site came back (that is what the MTTR split
	// is for), so the driver must order table 1 first by observed demand,
	// not by luck of catalog iteration order.
	for i := 0; i < 3; i++ {
		tryHistoricalScan(addr, 1, 1, probeRng, desc)
	}
	start := time.Now()
	type firstQuery struct {
		after time.Duration
		rows  int
	}
	firstCh := make(chan firstQuery, 1)
	stopPoll := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			if n, ok := tryHistoricalScan(addr, 1, 1, probeRng, desc); ok {
				firstCh <- firstQuery{after: time.Since(start), rows: n}
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Concurrency 1 keeps the objects strictly sequential: the split shown
	// is "first object servable" vs "last object caught up", undiluted by
	// parallel recovery (which would shrink the denominator, not the point
	// being measured).
	stats, err := core.New(w, cl.Catalog).RecoverSite(core.Options{Parallel: true, Concurrency: 1})
	catchup := time.Since(start)
	close(stopPoll)
	if err != nil {
		return err
	}
	var first firstQuery
	select {
	case first = <-firstCh:
	default:
		return fmt.Errorf("recovery bench: no query was served during the whole %v catch-up", catchup)
	}
	wantRows := probeKeys
	if first.rows != wantRows {
		return fmt.Errorf("recovery bench: first served query returned %d rows, want %d", first.rows, wantRows)
	}

	hot, err := runHotSegment(25_000)
	if err != nil {
		return fmt.Errorf("hot-segment scenario: %w", err)
	}

	out := struct {
		Bench               string         `json:"bench"`
		Workers             int            `json:"workers"`
		Objects             int            `json:"objects"`
		DimRows             int            `json:"dim_table_rows"`
		FactRowsPerObject   int            `json:"fact_rows_per_object"`
		DeltaInserts        int            `json:"delta_inserts"`
		DeltaDeletes        int            `json:"delta_deletes"`
		TimeToFirstQueryMS  float64        `json:"time_to_first_query_ms"`
		FirstQueryRows      int            `json:"first_query_rows"`
		TimeToFullCatchupMS float64        `json:"time_to_full_catchup_ms"`
		Ratio               float64        `json:"ratio"`
		PerObject           []recObjResult `json:"per_object"`
		HotSegment          *hotSegResult  `json:"hot_segment"`
	}{
		Bench:               "recovery",
		Workers:             2,
		Objects:             objects,
		DimRows:             dimRows,
		FactRowsPerObject:   perObj,
		DeltaInserts:        totalInserts,
		DeltaDeletes:        totalDeletes,
		TimeToFirstQueryMS:  first.after.Seconds() * 1000,
		FirstQueryRows:      first.rows,
		TimeToFullCatchupMS: catchup.Seconds() * 1000,
		HotSegment:          hot,
	}
	if catchup > 0 {
		out.Ratio = first.after.Seconds() / catchup.Seconds()
	}
	for _, o := range stats.Objects {
		out.PerObject = append(out.PerObject, recObjResult{
			Table:    o.Table,
			Phase1MS: o.Phase1.Seconds() * 1000,
			Phase2MS: (o.Phase2Update + o.Phase2Insert).Seconds() * 1000,
			Phase3MS: o.Phase3.Seconds() * 1000,
			TotalMS:  o.Total.Seconds() * 1000,
			Inserts:  o.Phase2Inserts + o.Phase3Inserts,
			Deletes:  o.Phase2Deletes + o.Phase3Deletes,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// hotSegResult is the segment-granularity half of the recovery bench
// output: how long the first read of a hot key range inside one big fact
// table waited, versus that same table's full catch-up.
type hotSegResult struct {
	FactRows       int     `json:"fact_rows"`
	Segments       int     `json:"segments"`
	ProbeKeyLo     int64   `json:"probe_key_lo"`
	ProbeKeyHi     int64   `json:"probe_key_hi"`
	FirstReadRows  int     `json:"first_read_rows"`
	FirstReadMS    float64 `json:"first_read_ms"`
	TableCatchupMS float64 `json:"table_catchup_ms"`
	Ratio          float64 `json:"ratio"`
}

// runHotSegment measures what segment-granular recovery states buy INSIDE
// one object: a single large fact table crashes and misses a delta, and the
// waiting query wants a recent (post-delta) slice of one key range in the
// middle of the table. With whole-object states that read is refused until
// the entire table's Phase 2 pass covers the delta; with per-segment states
// the refusals fault-in the range, Phase 2 copies that segment's window
// first and publishes its horizon independently, so the read lands after
// roughly one shard of the copy work. The probe's asOf is deliberately the
// post-delta high-water mark — a pre-crash asOf would be servable right
// after the Phase 1 rewind and would measure nothing segment-specific.
func runHotSegment(rows int) (*hotSegResult, error) {
	if rows < 8000 {
		rows = 8000
	}
	dir := tmp()
	defer os.RemoveAll(dir)
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     2,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		BaseDir:     dir,
		PoolFrames:  1 << 16,
		LockTimeout: 5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	desc := sim.BenchDesc()
	if err := cl.CreateReplicatedTable(1, desc, 64, 0, 1); err != nil {
		return nil, err
	}
	const chunk = 8192
	for wi := 0; wi < 2; wi++ {
		tb, err := cl.Workers[wi].Mgr.Get(1)
		if err != nil {
			return nil, err
		}
		for lo := 0; lo < rows; lo += chunk {
			n := rows - lo
			if n > chunk {
				n = chunk
			}
			batch := make([]tuple.Tuple, n)
			for i := 0; i < n; i++ {
				tp := sim.BenchTuple(desc, int64(lo+i))
				tp.SetInsTS(1)
				batch[i] = tp
			}
			if _, err := tb.Heap.BulkLoadSegment(batch); err != nil {
				return nil, err
			}
		}
	}
	cl.Coord.Authority.Advance(2)
	for _, w := range cl.Workers {
		w.SeedAppliedTS(2)
		if err := w.CheckpointNow(); err != nil {
			return nil, err
		}
		if err := w.Mgr.RebuildIndexes(); err != nil {
			return nil, err
		}
	}

	// The missed delta touches the WHOLE key space — deletes across the
	// preloaded range plus appended inserts — so every segment has real
	// Phase 2 work and the hot segment's early horizon is not an artifact
	// of an empty window.
	cl.Workers[0].Crash()
	const perTxn = 100
	deletes, inserts := rows/5, rows/2
	commit := func(total int, op func(tx *coord.Txn, i int) error) error {
		for lo := 0; lo < total; lo += perTxn {
			hi := lo + perTxn
			if hi > total {
				hi = total
			}
			tx := cl.Coord.Begin()
			for i := lo; i < hi; i++ {
				if err := op(tx, i); err != nil {
					return err
				}
			}
			if _, err := tx.Commit(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := commit(deletes, func(tx *coord.Txn, i int) error {
		return tx.DeleteKey(1, int64(i*5))
	}); err != nil {
		return nil, err
	}
	if err := commit(inserts, func(tx *coord.Txn, i int) error {
		return tx.Insert(1, sim.BenchTuple(desc, int64(1_000_000+i)))
	}); err != nil {
		return nil, err
	}
	// The post-delta high-water mark: only servable once the hot segment's
	// Phase 2 window has been copied and flushed.
	asOf := int64(cl.Coord.Authority.HWM())

	w, err := cl.RestartWorker(0)
	if err != nil {
		return nil, err
	}
	addr := w.Addr()
	hotLo := int64(rows / 2)
	hotRng := expr.KeyRange{Lo: hotLo, Hi: hotLo + 1000}
	// Expected answer: the preloaded keys in the hot range minus the ones
	// the delta deleted (every 5th key across [0, deletes*5)).
	expected := 0
	for k := hotRng.Lo; k < hotRng.Hi; k++ {
		if k%5 == 0 && k/5 < int64(deletes) {
			continue
		}
		expected++
	}

	// Prime the hot range before the driver starts: this refused probe is
	// buffered by the site and replayed when RecoverSite attaches its
	// fault-in hook, so the very first Phase 2 scheduling decision already
	// knows which segment the waiting query wants.
	if _, ok := tryHistoricalScan(addr, 1, asOf, hotRng, desc); ok {
		return nil, fmt.Errorf("hot-segment probe served before recovery ran")
	}

	start := time.Now()
	type firstQuery struct {
		after time.Duration
		rows  int
		segs  int
	}
	firstCh := make(chan firstQuery, 1)
	stopPoll := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			// Each refusal faults in the declared range, feeding the
			// recovery driver's hot-segment ordering.
			if n, ok := tryHistoricalScan(addr, 1, asOf, hotRng, desc); ok {
				// Sample the segment table now, mid-recovery: completion
				// collapses it back to one full-range Ready segment.
				firstCh <- firstQuery{after: time.Since(start), rows: n,
					segs: len(w.ObjectSegments(1))}
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_, err = core.New(w, cl.Catalog).RecoverSite(core.Options{Parallel: true, Concurrency: 1})
	catchup := time.Since(start)
	close(stopPoll)
	if err != nil {
		return nil, err
	}
	var first firstQuery
	select {
	case first = <-firstCh:
	default:
		return nil, fmt.Errorf("no hot-segment read was served during the whole %v catch-up", catchup)
	}
	if first.rows != expected {
		return nil, fmt.Errorf("first served hot-segment read returned %d rows, want %d", first.rows, expected)
	}

	out := &hotSegResult{
		FactRows:       rows,
		Segments:       first.segs,
		ProbeKeyLo:     hotRng.Lo,
		ProbeKeyHi:     hotRng.Hi,
		FirstReadRows:  first.rows,
		FirstReadMS:    first.after.Seconds() * 1000,
		TableCatchupMS: catchup.Seconds() * 1000,
	}
	if catchup > 0 {
		out.Ratio = first.after.Seconds() / catchup.Seconds()
	}
	return out, nil
}

// tryHistoricalScan issues one raw historical scan of one key range against
// a worker and reports whether it was served, with the row count from the
// stream's end frame. The range is declared on the message (KeyLo/KeyHi) so
// the worker's segment-granular gate consults only the segments the read
// touches — and a refusal faults in exactly that range. A refusal (the
// range's recovery state does not cover asOf yet) comes back as ok=false.
func tryHistoricalScan(addr string, table int32, asOf int64, rng expr.KeyRange, desc *tuple.Desc) (rows int, ok bool) {
	c, err := comm.Dial(addr)
	if err != nil {
		return 0, false
	}
	defer c.Close()
	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 7777, Table: table,
		Vis: uint8(exec.Historical), TS: asOf, Pred: rng.Pred(desc).Terms,
		KeyLo: rng.Lo, KeyHi: rng.Hi}); err != nil {
		return 0, false
	}
	for {
		m, err := c.Recv()
		if err != nil {
			return 0, false
		}
		switch m.Type {
		case wire.MsgScanEnd:
			return int(m.Count), true
		case wire.MsgErr:
			return 0, false
		}
	}
}
