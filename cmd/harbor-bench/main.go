// Command harbor-bench regenerates the tables and figures of the thesis's
// evaluation (Chapter 6) and prints them in paper-style rows.
//
// Usage:
//
//	harbor-bench table42
//	harbor-bench protocols [-txns 200] [-conc 1,4,16]
//	harbor-bench fig62 [-txns 200] [-conc 1,2,5,10,20]
//	harbor-bench fig63 [-txns 100]
//	harbor-bench fig64 [-segments 20] [-segpages 64]
//	harbor-bench fig65 [-txns 2000]
//	harbor-bench fig66
//	harbor-bench fig67 [-seconds 12]
//	harbor-bench scan [-rows 100000] [-iters 3]
//	harbor-bench agg [-rows 100000] [-iters 5]
//	harbor-bench recovery [-rows 100000] [-objects 4]
//	harbor-bench rebalance [-rows 64000] [-seconds 6]
//	harbor-bench all
//
// Absolute numbers depend on the host (fsync latency, loopback RTT, core
// count); the shapes are what reproduce the paper. See EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"harbor/internal/obs"
	"harbor/internal/sim"
	"harbor/internal/testutil"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	txns := fs.Int("txns", 200, "transactions per stream / workload size")
	concList := fs.String("conc", "1,2,5,10,20", "concurrency levels (fig62)")
	segments := fs.Int("segments", 20, "preloaded segments per table (fig64/65/66)")
	segPages := fs.Int("segpages", 64, "pages per segment")
	seconds := fs.Int("seconds", 12, "timeline length (fig67)")
	rows := fs.Int("rows", 100000, "table cardinality (scan)")
	iters := fs.Int("iters", 3, "timed scan repetitions (scan)")
	objects := fs.Int("objects", 4, "tables on the recovering site (recovery)")
	_ = fs.Parse(os.Args[2:])

	var err error
	switch cmd {
	case "table42":
		err = runTable42()
	case "table41":
		runTable41()
	case "protocols":
		conc := parseInts(*concList)
		if *concList == "1,2,5,10,20" { // flag default is fig62's ladder
			conc = []int{1, 4, 16}
		}
		err = runProtocols(conc, *txns)
	case "fig62":
		err = runFig62(parseInts(*concList), *txns)
	case "fig63":
		err = runFig63(*txns)
	case "fig64":
		err = runFig64(*segments, int32(*segPages))
	case "fig65":
		err = runFig65(*segments, int32(*segPages), *txns)
	case "fig66":
		err = runFig66(*segments, int32(*segPages), *txns)
	case "fig67":
		err = runFig67(time.Duration(*seconds) * time.Second)
	case "scan":
		err = runScan(*rows, *iters)
	case "agg":
		err = runAgg(*rows, *iters)
	case "recovery":
		err = runRecovery(*rows, *objects)
	case "rebalance":
		r := *rows
		if r == 100000 { // flag default is the scan bench's cardinality
			r = 64000
		}
		s := *seconds
		if s == 12 { // flag default is fig67's timeline length
			s = 6
		}
		err = runRebalance(r, s)
	case "all":
		err = runAll(parseInts(*concList), *txns, *segments, int32(*segPages), time.Duration(*seconds)*time.Second)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "harbor-bench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: harbor-bench <table42|table41|protocols|fig62|fig63|fig64|fig65|fig66|fig67|scan|agg|recovery|rebalance|all> [flags]`)
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err == nil {
			out = append(out, v)
		}
	}
	return out
}

func tmp() string {
	dir, err := os.MkdirTemp("", "harbor-bench")
	if err != nil {
		panic(err)
	}
	return dir
}

func runAll(conc []int, txns, segments int, segPages int32, timeline time.Duration) error {
	if err := runTable42(); err != nil {
		return err
	}
	runTable41()
	if err := runFig62(conc, txns); err != nil {
		return err
	}
	if err := runFig63(txns / 2); err != nil {
		return err
	}
	if err := runFig64(segments, segPages); err != nil {
		return err
	}
	if err := runFig65(segments, segPages, txns*5); err != nil {
		return err
	}
	if err := runFig66(segments, segPages, txns*5); err != nil {
		return err
	}
	return runFig67(timeline)
}

// runTable42 measures the Table 4.2 profile on live clusters.
func runTable42() error {
	fmt.Println("== Table 4.2: Overhead of commit protocols ==")
	fmt.Printf("%-18s %10s %14s %14s\n", "Protocol", "Msgs/wkr", "Coord FWs", "Worker FWs")
	desc := sim.BenchDesc()
	for _, protocol := range txn.Protocols() {
		dir := tmp()
		cl, err := testutil.NewCluster(testutil.ClusterConfig{
			Workers: 2, Protocol: protocol, Mode: modeFor(protocol), GroupCommit: true, BaseDir: dir,
		})
		if err != nil {
			return err
		}
		if err := cl.CreateReplicatedTable(1, desc, 64); err != nil {
			cl.Close()
			return err
		}
		cl.Coord.ResetCounters()
		for _, w := range cl.Workers {
			w.ResetCounters()
		}
		const n = 50
		for i := 0; i < n; i++ {
			tx := cl.Coord.Begin()
			if err := tx.Insert(1, sim.BenchTuple(desc, int64(i))); err != nil {
				cl.Close()
				return err
			}
			if _, err := tx.Commit(); err != nil {
				cl.Close()
				return err
			}
		}
		coordFW := float64(cl.Coord.ForcedWrites()) / n
		var workerFW float64
		for _, w := range cl.Workers {
			workerFW += float64(w.ForcedWrites())
		}
		workerFW /= 2 * n
		want := protocol.ExpectedCost()
		fmt.Printf("%-18s %10d %14.1f %14.1f   (plan: %d / %d / %d)\n",
			protocol, want.MessagesPerWorker, coordFW, workerFW,
			want.MessagesPerWorker, want.CoordForcedWrites, want.WorkerForcedWrites)
		cl.Close()
		os.RemoveAll(dir)
	}
	fmt.Println()
	return nil
}

// modeFor pairs a protocol with its natural recovery mode: plans with
// worker force points keep a WAL and recover with ARIES; logless plans
// recover from replicas.
func modeFor(p txn.Protocol) worker.RecoveryMode {
	if p.Plan().WorkerForces() {
		return worker.ARIES
	}
	return worker.HARBOR
}

// protoResult is one data point of the protocols baseline. The latency
// percentiles and histogram come from the coordinator's obs registry
// (coord.commit.latency.ns), not from wall-clock division, so tail behaviour
// is visible in the baseline.
type protoResult struct {
	Protocol     string            `json:"protocol"`
	Concurrency  int               `json:"concurrency"`
	Txns         int               `json:"txns"`
	TPS          float64           `json:"tps"`
	AvgLatencyUS float64           `json:"avg_latency_us"`
	P50US        float64           `json:"p50_latency_us,omitempty"`
	P95US        float64           `json:"p95_latency_us,omitempty"`
	P99US        float64           `json:"p99_latency_us,omitempty"`
	MsgsPerWkr   int               `json:"messages_per_worker"`
	CoordFW      int               `json:"coord_forced_writes"`
	WorkerFW     int               `json:"worker_forced_writes"`
	CommitHist   *obs.HistSnapshot `json:"commit_latency_ns,omitempty"`
}

// runProtocols measures per-protocol commit latency/throughput at a few
// concurrency levels and emits JSON — the commit-path perf baseline
// (BENCH_protocols.json) future changes are compared against.
func runProtocols(conc []int, txns int) error {
	out := struct {
		Bench         string        `json:"bench"`
		Workers       int           `json:"workers"`
		SyncDelayMS   float64       `json:"sync_delay_ms"`
		TxnsPerStream int           `json:"txns_per_stream"`
		Results       []protoResult `json:"results"`
	}{
		Bench:         "protocols",
		Workers:       2,
		SyncDelayMS:   sim.SimulatedDiskLatency.Seconds() * 1000,
		TxnsPerStream: txns,
	}
	for _, protocol := range txn.Protocols() {
		cfg := sim.ProtoConfig{
			Name:        protocol.String(),
			Protocol:    protocol,
			Mode:        modeFor(protocol),
			GroupCommit: true,
			Workers:     2,
		}
		cost := protocol.ExpectedCost()
		for _, c := range conc {
			dir := tmp()
			res, err := sim.RunCommitBench(dir, cfg, c, txns, 0)
			os.RemoveAll(dir)
			if err != nil {
				return err
			}
			pr := protoResult{
				Protocol:     protocol.String(),
				Concurrency:  c,
				Txns:         res.Txns,
				TPS:          res.TPS,
				AvgLatencyUS: float64(res.AvgLatency.Microseconds()),
				MsgsPerWkr:   cost.MessagesPerWorker,
				CoordFW:      cost.CoordForcedWrites,
				WorkerFW:     cost.WorkerForcedWrites,
				CommitHist:   res.CommitLatency,
			}
			if h := res.CommitLatency; h != nil {
				pr.P50US = float64(h.P50) / 1000
				pr.P95US = float64(h.P95) / 1000
				pr.P99US = float64(h.P99) / 1000
			}
			out.Results = append(out.Results, pr)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runTable41 prints the backup-coordinator action table, which is verified
// behaviourally by the worker test suite (TestConsensus*).
func runTable41() {
	fmt.Println("== Table 4.1: Action table for backup coordinator ==")
	fmt.Println("(behaviour verified by internal/worker TestConsensus* tests)")
	rows := [][2]string{
		{"pending", "abort"},
		{"prepared, voted NO", "abort"},
		{"prepared, voted YES", "prepare, then abort"},
		{"aborted", "abort"},
		{"prepared-to-commit", "prepare-to-commit, then commit"},
		{"committed", "commit"},
	}
	fmt.Printf("%-24s %s\n", "Backup state", "Action(s)")
	for _, r := range rows {
		fmt.Printf("%-24s %s\n", r[0], r[1])
	}
	fmt.Println()
}

func runFig62(conc []int, txns int) error {
	fmt.Println("== Figure 6-2: Transaction processing performance of commit protocols ==")
	fmt.Printf("%-36s", "Protocol \\ concurrency")
	for _, c := range conc {
		fmt.Printf(" %8d", c)
	}
	fmt.Println("   (tps)")
	for _, cfg := range sim.StandardConfigs() {
		fmt.Printf("%-36s", cfg.Name)
		for _, c := range conc {
			dir := tmp()
			res, err := sim.RunCommitBench(dir, cfg, c, txns, 0)
			os.RemoveAll(dir)
			if err != nil {
				return err
			}
			fmt.Printf(" %8.0f", res.TPS)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func runFig63(txns int) error {
	fmt.Println("== Figure 6-3: Transaction processing with simulated CPU work ==")
	cycles := []int64{0, 250_000, 500_000, 1_000_000, 2_000_000, 5_000_000}
	for _, concurrency := range []int{1, 5, 10} {
		fmt.Printf("-- %d concurrent transaction(s) --\n", concurrency)
		fmt.Printf("%-36s", "Protocol \\ cycles")
		for _, cy := range cycles {
			fmt.Printf(" %9d", cy)
		}
		fmt.Println("   (tps)")
		for _, cfg := range sim.StandardConfigs()[:4] {
			fmt.Printf("%-36s", cfg.Name)
			for _, cy := range cycles {
				dir := tmp()
				res, err := sim.RunCommitBench(dir, cfg, concurrency, txns, cy)
				os.RemoveAll(dir)
				if err != nil {
					return err
				}
				fmt.Printf(" %9.0f", res.TPS)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	return nil
}

func runFig64(segments int, segPages int32) error {
	fmt.Println("== Figure 6-4: Recovery time vs insert transactions since crash ==")
	txnCounts := []int{100, 500, 1000, 2000, 4000}
	scenarios := []sim.RecoveryScenario{
		sim.Aries1Table, sim.Harbor1Table, sim.Harbor2TablesSerial, sim.Harbor2TablesParallel,
	}
	fmt.Printf("%-28s", "Scenario \\ txns")
	for _, n := range txnCounts {
		fmt.Printf(" %8d", n)
	}
	fmt.Println("   (recovery ms)")
	for _, sc := range scenarios {
		fmt.Printf("%-28s", sc)
		for _, n := range txnCounts {
			dir := tmp()
			res, err := sim.RunRecoveryBench(dir, sim.RecoveryParams{
				Scenario: sc, PreloadSegments: segments, SegPages: segPages, InsertTxns: n,
			})
			os.RemoveAll(dir)
			if err != nil {
				return err
			}
			fmt.Printf(" %8.0f", res.RecoveryTime.Seconds()*1000)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func runFig65(segments int, segPages int32, txns int) error {
	fmt.Println("== Figure 6-5: Recovery time vs historical segments updated ==")
	histSegs := []int{0, 2, 4, 8, 12, 16}
	scenarios := []sim.RecoveryScenario{
		sim.Aries1Table, sim.Harbor1Table, sim.Harbor2TablesSerial, sim.Harbor2TablesParallel,
	}
	fmt.Printf("%-28s", "Scenario \\ hist segments")
	for _, h := range histSegs {
		fmt.Printf(" %8d", h)
	}
	fmt.Println("   (recovery ms)")
	for _, sc := range scenarios {
		fmt.Printf("%-28s", sc)
		for _, h := range histSegs {
			if h >= segments {
				fmt.Printf(" %8s", "-")
				continue
			}
			dir := tmp()
			res, err := sim.RunRecoveryBench(dir, sim.RecoveryParams{
				Scenario: sc, PreloadSegments: segments, SegPages: segPages,
				InsertTxns: txns, HistoricalSegmentUpdates: h,
			})
			os.RemoveAll(dir)
			if err != nil {
				return err
			}
			fmt.Printf(" %8.0f", res.RecoveryTime.Seconds()*1000)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func runFig66(segments int, segPages int32, txns int) error {
	fmt.Println("== Figure 6-6: Decomposition of HARBOR recovery by phase ==")
	histSegs := []int{0, 2, 4, 8, 12, 16}
	fmt.Printf("%8s %10s %14s %14s %10s %10s\n",
		"histseg", "phase1-ms", "p2(SEL+UPD)-ms", "p2(SEL+INS)-ms", "phase3-ms", "total-ms")
	for _, h := range histSegs {
		if h >= segments {
			continue
		}
		dir := tmp()
		res, err := sim.RunRecoveryBench(dir, sim.RecoveryParams{
			Scenario: sim.Harbor1Table, PreloadSegments: segments, SegPages: segPages,
			InsertTxns: txns, HistoricalSegmentUpdates: h,
		})
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
		ms := func(d time.Duration) float64 { return d.Seconds() * 1000 }
		fmt.Printf("%8d %10.1f %14.1f %14.1f %10.1f %10.1f\n",
			h, ms(res.Phase1), ms(res.Phase2Update), ms(res.Phase2Insert), ms(res.Phase3),
			ms(res.RecoveryTime))
	}
	fmt.Println()
	return nil
}

func runFig67(total time.Duration) error {
	fmt.Println("== Figure 6-7: Transaction processing during site failure and recovery ==")
	dir := tmp()
	defer os.RemoveAll(dir)
	samples, err := sim.RunFailoverTimeline(dir, sim.TimelineParams{
		Total:       total,
		CrashAt:     total / 4,
		RecoverAt:   total / 2,
		SampleEvery: 250 * time.Millisecond,
		PreloadRows: 500,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s  %s\n", "t (s)", "tps", "event")
	for _, s := range samples {
		ev := s.Event
		fmt.Printf("%10.2f %10.0f  %s\n", s.At.Seconds(), s.TPS, ev)
	}
	fmt.Println()
	return nil
}
