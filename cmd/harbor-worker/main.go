// Command harbor-worker runs one worker site as a standalone process.
//
//	harbor-worker -site 1 -dir /var/lib/harbor/site1 -addr :7101 \
//	    -sites "0=coord:7100,1=w1:7101,2=w2:7102" \
//	    -protocol opt3pc -mode harbor
//
// The -sites list names every site in the cluster (site 0 is the
// coordinator) so the worker can reach the coordinator's recovery server
// and its peers for the consensus building protocol. With -recover the
// worker runs crash recovery before serving (ARIES restart in aries mode;
// HARBOR recovery needs the catalog's replica layout, which the library
// API provides — see examples/failover).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/obs"
	"harbor/internal/txn"
	"harbor/internal/worker"

	"harbor/internal/core"
)

func main() {
	site := flag.Int("site", 1, "site id (>= 1)")
	dir := flag.String("dir", "", "data directory (required)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	sites := flag.String("sites", "", "cluster layout: id=host:port,...")
	protocol := flag.String("protocol", "opt3pc", "commit protocol: 2pc|opt2pc|3pc|opt3pc")
	mode := flag.String("mode", "harbor", "recovery mode: harbor|aries")
	checkpoint := flag.Duration("checkpoint", time.Second, "checkpoint interval (0 disables)")
	groupCommit := flag.Bool("group-commit", true, "enable group commit")
	doRecover := flag.Bool("recover", false, "run ARIES restart recovery before serving (aries mode)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/harbor metrics+traces and pprof on this address (empty disables)")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "harbor-worker: -dir is required")
		os.Exit(2)
	}
	p, m, err := parseProtoMode(*protocol, *mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "harbor-worker:", err)
		os.Exit(2)
	}
	cat := catalog.New(0)
	if err := parseSites(cat, *sites); err != nil {
		fmt.Fprintln(os.Stderr, "harbor-worker:", err)
		os.Exit(2)
	}
	w, err := worker.Open(worker.Config{
		Site:            catalog.SiteID(*site),
		Dir:             *dir,
		Addr:            *addr,
		Protocol:        p,
		Mode:            m,
		CheckpointEvery: *checkpoint,
		GroupCommit:     *groupCommit,
		Catalog:         cat,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "harbor-worker:", err)
		os.Exit(1)
	}
	// Arm online torn-page repair: a read tripping a CRC failure kicks off
	// a background repair-from-buddy instead of leaving the page dead.
	rec := core.New(w, cat)
	w.SetRepairHook(func(table int32) error {
		_, err := rec.RepairTable(table)
		return err
	})
	fmt.Printf("harbor-worker: site %d serving on %s (protocol %s, mode %s)\n",
		*site, w.Addr(), p, m)
	if *debugAddr != "" {
		if err := serveDebug(*debugAddr, obs.DebugMux(w.Obs(), w.Trace())); err != nil {
			fmt.Fprintln(os.Stderr, "harbor-worker:", err)
			os.Exit(1)
		}
	}
	if *doRecover && m == worker.ARIES {
		stats, err := w.RecoverARIES()
		if err != nil {
			fmt.Fprintln(os.Stderr, "harbor-worker: recovery failed:", err)
			os.Exit(1)
		}
		fmt.Printf("harbor-worker: ARIES restart done in %v (redo %d, undo %d, in-doubt %d)\n",
			stats.Total, stats.RedoApplied, stats.UndoApplied, stats.InDoubt)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("harbor-worker: shutting down")
	_ = w.Close()
}

func parseProtoMode(protocol, mode string) (txn.Protocol, worker.RecoveryMode, error) {
	var p txn.Protocol
	switch strings.ToLower(protocol) {
	case "2pc":
		p = txn.TwoPC
	case "opt2pc":
		p = txn.OptTwoPC
	case "3pc":
		p = txn.ThreePC
	case "opt3pc":
		p = txn.OptThreePC
	default:
		return 0, 0, fmt.Errorf("unknown protocol %q", protocol)
	}
	var m worker.RecoveryMode
	switch strings.ToLower(mode) {
	case "harbor":
		m = worker.HARBOR
	case "aries":
		m = worker.ARIES
	default:
		return 0, 0, fmt.Errorf("unknown mode %q", mode)
	}
	return p, m, nil
}

func parseSites(cat *catalog.Catalog, spec string) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -sites entry %q", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return fmt.Errorf("bad site id %q", kv[0])
		}
		cat.AddSite(catalog.SiteID(id), kv[1])
	}
	return nil
}

// serveDebug starts the observability endpoint, printing the bound address
// so callers using :0 can find it.
func serveDebug(addr string, mux *http.ServeMux) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug listener: %w", err)
	}
	fmt.Printf("debug: /debug/harbor on http://%s/debug/harbor\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}
