GO ?= go

.PHONY: all build test race vet check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the packages with coordinator/network concurrency.
race:
	$(GO) test -race -count=1 ./internal/coord/ ./internal/comm/

# The CI gate: vet + race on the concurrent packages, then the full suite.
check: vet race test

bench:
	$(GO) test -bench . -benchtime 2000x -run xxx .
