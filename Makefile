GO ?= go

.PHONY: all build test race vet check bench bench-scan bench-agg bench-recovery bench-rebalance chaos soak smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the packages with coordinator/network concurrency.
race:
	$(GO) test -race -count=1 ./internal/coord/ ./internal/comm/ ./internal/faultnet/ ./internal/chaos/ ./internal/worker/ ./internal/core/

# The CI gate: vet + race on the concurrent packages, then the full suite.
check: vet race test

# Seeded chaos sweep: every scenario under CHAOS_ITERS consecutive seeds
# starting at CHAOS_SEED. A failure prints the reproducing seed.
chaos:
	CHAOS_SEED=$${CHAOS_SEED:-1} CHAOS_ITERS=$${CHAOS_ITERS:-3} \
		$(GO) test ./internal/chaos/ -run TestChaos -count=1 -v

# Compound-chaos soak: rounds of the zipfian workload under partitions,
# crashes, lying fsyncs and torn pages until SOAK_DURATION expires (0 = one
# round), rotating commit protocols. A violation prints the reproducing
# seed and the executed fault schedule; replay one round with
# SOAK_SEED=<seed> SOAK_DURATION=0. SOAK_DUMP writes the violation report
# to a file for CI artifact upload.
soak:
	SOAK_SEED=$${SOAK_SEED:-1} SOAK_DURATION=$${SOAK_DURATION:-1m} \
		$(GO) test ./internal/chaos/ -run TestSoak -count=1 -v -timeout 40m

bench:
	$(GO) test -bench . -benchtime 2000x -run xxx .

# Batched-pipeline throughput: distributed scan + Phase 2 catch-up, batched
# framing vs its tuple-at-a-time ablation. Regenerates BENCH_scan.json.
bench-scan:
	$(GO) run ./cmd/harbor-bench scan | tee BENCH_scan.json

# Aggregate pushdown vs ship-every-row ablation: the 100k-row 4-site
# grouped sum. Regenerates BENCH_agg.json.
bench-agg:
	$(GO) run ./cmd/harbor-bench agg -iters 5 | tee BENCH_agg.json

# MTTR split of per-object recovery: time until the first historical query
# is answered by a recovering multi-object site vs time until full catch-up.
# Regenerates BENCH_recovery.json.
bench-recovery:
	$(GO) run ./cmd/harbor-bench recovery | tee BENCH_recovery.json

# Online scale-out through the segment-transfer engine: a packed 4-site
# placement rebalanced to 6 then 8 sites with core.Migrate, measuring
# scan and commit throughput at each stage. Regenerates
# BENCH_rebalance.json.
bench-rebalance:
	$(GO) run ./cmd/harbor-bench rebalance | tee BENCH_rebalance.json

# Boots a standalone worker with -debug-addr and validates the
# /debug/harbor observability endpoint's JSON shape.
smoke:
	./scripts/smoke_debug.sh
