// Quickstart: a three-worker HARBOR cluster with 2-safe replication,
// transactional inserts/updates/deletes, current reads, and time travel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"harbor"
)

func main() {
	dir, err := os.MkdirTemp("", "harbor-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One coordinator + three workers; every table is replicated on all
	// three workers, so the cluster tolerates any two failures (2-safety).
	cluster, err := harbor.Start(harbor.Options{Workers: 3, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	products := harbor.MustSchema("id",
		harbor.Int64Field("id"),
		harbor.CharField("name", 24),
		harbor.Int32Field("price_cents"),
	)
	if err := cluster.CreateTable(1, products); err != nil {
		log.Fatal(err)
	}

	// A transaction inserting the Figure 5-1 products.
	tx := cluster.Begin()
	for _, p := range []struct {
		id    int64
		name  string
		price int64
	}{
		{1, "Colgate", 299},
		{2, "Poland Spring", 159},
		{3, "Dell Monitor", 24900},
	} {
		if err := tx.Insert(1, harbor.Row(products,
			harbor.Int(p.id), harbor.Str(p.name), harbor.Int(p.price))); err != nil {
			log.Fatal(err)
		}
	}
	t1, err := tx.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded 3 products at time %d\n", t1)

	// A correction transaction: reprice the monitor, drop the water.
	tx2 := cluster.Begin()
	if err := tx2.UpdateKey(1, 3, harbor.Row(products,
		harbor.Int(3), harbor.Str("Dell Monitor"), harbor.Int(19900))); err != nil {
		log.Fatal(err)
	}
	if err := tx2.DeleteKey(1, 2); err != nil {
		log.Fatal(err)
	}
	t2, err := tx2.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied corrections at time %d\n", t2)

	show := func(label string, rows []harbor.Tuple) {
		fmt.Printf("%s:\n", label)
		for _, r := range rows {
			fmt.Printf("  #%d %-16s %6d cents\n",
				r.Key(products),
				r.Values[products.FieldIndex("name")].Str,
				r.Values[products.FieldIndex("price_cents")].I64)
		}
	}

	now, err := cluster.Query(1, harbor.Query{})
	if err != nil {
		log.Fatal(err)
	}
	show("current catalog", now)

	// Time travel: the catalog as it looked before the corrections.
	then, err := cluster.Query(1, harbor.Query{AsOf: t1})
	if err != nil {
		log.Fatal(err)
	}
	show(fmt.Sprintf("catalog as of time %d (before corrections)", t1), then)

	// Predicate pushdown.
	cheap, err := cluster.Query(1, harbor.Query{
		Where: harbor.Where(products, "price_cents", harbor.LT, harbor.Int(1000)),
	})
	if err != nil {
		log.Fatal(err)
	}
	show("current items under $10", cheap)
}
