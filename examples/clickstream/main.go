// Clickstream: the §4.2 bulk-load / bulk-drop scenario. A clickthrough
// warehouse (the thesis names Priceline, Yahoo, and Google) retains only
// the most recent N days of click data: every "day" a fresh segment is
// bulk-loaded atomically and the oldest segment is bulk-dropped, reclaiming
// its space — with ad-hoc analytics running throughout.
//
//	go run ./examples/clickstream
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"harbor"
)

const (
	retainDays    = 5
	clicksPerDay  = 2000
	simulatedDays = 9
)

func main() {
	dir, err := os.MkdirTemp("", "harbor-clickstream")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := harbor.Start(harbor.Options{Workers: 2, Dir: dir, SegPages: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	clicks := harbor.MustSchema("id",
		harbor.Int64Field("id"),
		harbor.Int64Field("user"),
		harbor.Int32Field("page"),
		harbor.Int32Field("dwell_ms"),
	)
	if err := cluster.CreateTable(1, clicks); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	nextID := int64(0)
	day := 0
	loadDay := func() {
		day++
		rows := make([]harbor.Tuple, clicksPerDay)
		for i := range rows {
			rows[i] = harbor.Row(clicks,
				harbor.Int(nextID),
				harbor.Int(int64(rng.Intn(500))),      // user
				harbor.Int(int64(rng.Intn(40))),       // page
				harbor.Int(int64(rng.Intn(60_000)+1)), // dwell
			)
			nextID++
		}
		ts, err := cluster.BulkLoad(1, rows)
		if err != nil {
			log.Fatal(err)
		}
		segs, _ := cluster.SegmentCount(0, 1)
		fmt.Printf("day %2d: bulk-loaded %d clicks at time %d (%d segments resident)\n",
			day, clicksPerDay, ts, segs)
	}

	analyze := func() {
		rows, err := cluster.Query(1, harbor.Query{
			Where: harbor.Where(clicks, "dwell_ms", harbor.GE, harbor.Int(50_000)),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("         analytics: %d long-dwell clicks across the retained window\n", len(rows))
	}

	for d := 0; d < simulatedDays; d++ {
		loadDay()
		if day > retainDays {
			if err := cluster.DropOldestSegment(1); err != nil {
				log.Fatal(err)
			}
			segs, _ := cluster.SegmentCount(0, 1)
			fmt.Printf("         bulk-dropped the expired day (%d segments resident)\n", segs)
		}
		analyze()
	}

	total, err := cluster.Query(1, harbor.Query{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretained window holds %d clicks (%d days × %d)\n",
		len(total), retainDays, clicksPerDay)
	if len(total) != retainDays*clicksPerDay {
		log.Fatalf("retention invariant violated: %d rows", len(total))
	}
}
