// Timetravel: the §3.1 use case — "compare the outcome of some report both
// before and after a set of changes has been made to the database". A sales
// warehouse runs a revenue-by-store report, an ETL correction session
// rewrites part of the history, and the analyst re-runs the same report at
// both times to audit exactly what the correction changed — with no locks
// taken by either report (historical queries are lock-free, §3.3).
//
//	go run ./examples/timetravel
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"harbor"
)

var sales = harbor.MustSchema("id",
	harbor.Int64Field("id"),
	harbor.Int32Field("store"),
	harbor.Int32Field("amount_cents"),
)

func main() {
	dir, err := os.MkdirTemp("", "harbor-timetravel")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := harbor.Start(harbor.Options{Workers: 2, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	if err := cluster.CreateTable(1, sales); err != nil {
		log.Fatal(err)
	}

	// An ETL session loads a day of sales — store 7's feed double-reported
	// every amount, and one sale landed under the wrong store.
	tx := cluster.Begin()
	type sale struct {
		id            int64
		store, amount int64
	}
	day := []sale{
		{1, 3, 1250}, {2, 3, 600}, {3, 7, 2 * 4000}, {4, 7, 2 * 900},
		{5, 7, 2 * 150}, {6, 9, 7800}, {7, 9, 120}, {8, 3, 990},
	}
	for _, s := range day {
		if err := tx.Insert(1, harbor.Row(sales,
			harbor.Int(s.id), harbor.Int(s.store), harbor.Int(s.amount))); err != nil {
			log.Fatal(err)
		}
	}
	loadTime, err := tx.Commit()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("nightly report, before corrections:")
	printReport(cluster, harbor.Query{AsOf: loadTime})

	// The correction session (§1.1: "occasional updates of incorrect or
	// missing historical data"): halve store 7's amounts, move sale 6 to
	// store 5, and record a missing sale.
	fix := cluster.Begin()
	for _, id := range []int64{3, 4, 5} {
		old, err := cluster.Query(1, harbor.Query{
			AsOf:  loadTime,
			Where: harbor.Where(sales, "id", harbor.EQ, harbor.Int(id)),
		})
		if err != nil || len(old) != 1 {
			log.Fatalf("lookup %d: %v", id, err)
		}
		amount := old[0].Values[sales.FieldIndex("amount_cents")].I64 / 2
		if err := fix.UpdateKey(1, id, harbor.Row(sales,
			harbor.Int(id), harbor.Int(7), harbor.Int(amount))); err != nil {
			log.Fatal(err)
		}
	}
	if err := fix.UpdateKey(1, 6, harbor.Row(sales,
		harbor.Int(6), harbor.Int(5), harbor.Int(7800))); err != nil {
		log.Fatal(err)
	}
	if err := fix.Insert(1, harbor.Row(sales,
		harbor.Int(9), harbor.Int(3), harbor.Int(450))); err != nil {
		log.Fatal(err)
	}
	fixTime, err := fix.Commit()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsame report, after corrections:")
	printReport(cluster, harbor.Query{AsOf: fixTime})

	fmt.Println("\naudit: per-store deltas introduced by the correction session:")
	before := revenueByStore(cluster, loadTime)
	after := revenueByStore(cluster, fixTime)
	stores := map[int64]bool{}
	for s := range before {
		stores[s] = true
	}
	for s := range after {
		stores[s] = true
	}
	var ordered []int64
	for s := range stores {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, s := range ordered {
		delta := after[s] - before[s]
		if delta != 0 {
			fmt.Printf("  store %2d: %+d cents\n", s, delta)
		}
	}
}

func revenueByStore(cluster *harbor.Cluster, asOf harbor.Timestamp) map[int64]int64 {
	rows, err := cluster.Query(1, harbor.Query{AsOf: asOf})
	if err != nil {
		log.Fatal(err)
	}
	out := map[int64]int64{}
	storeIdx := sales.FieldIndex("store")
	amtIdx := sales.FieldIndex("amount_cents")
	for _, r := range rows {
		out[r.Values[storeIdx].I64] += r.Values[amtIdx].I64
	}
	return out
}

func printReport(cluster *harbor.Cluster, q harbor.Query) {
	rev := revenueByStore(cluster, q.AsOf)
	var stores []int64
	for s := range rev {
		stores = append(stores, s)
	}
	sort.Slice(stores, func(i, j int) bool { return stores[i] < stores[j] })
	for _, s := range stores {
		fmt.Printf("  store %2d: %7d cents\n", s, rev[s])
	}
}
