// Failover: the §6.5 story end to end. A writer streams sales into a
// replicated table; one worker fail-stops mid-stream; the cluster keeps
// committing on the survivor; the dead worker then runs HARBOR's
// three-phase online recovery — catching up from its recovery buddy without
// quiescing the writer — and rejoins. At the end both replicas are
// verified logically identical.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"harbor"
	"harbor/internal/exec"
)

func main() {
	dir, err := os.MkdirTemp("", "harbor-failover")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := harbor.Start(harbor.Options{
		Workers:         2,
		Dir:             dir,
		CheckpointEvery: 500 * time.Millisecond, // the paper checkpoints every 1s
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	sales := harbor.MustSchema("id",
		harbor.Int64Field("id"),
		harbor.Int32Field("store"),
		harbor.Int32Field("amount_cents"),
	)
	if err := cluster.CreateTable(1, sales); err != nil {
		log.Fatal(err)
	}

	// Continuous writer.
	var committed atomic.Int64
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		id := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := cluster.Begin()
			if err := tx.Insert(1, harbor.Row(sales,
				harbor.Int(id), harbor.Int(id%700), harbor.Int(100+id%900))); err != nil {
				_ = tx.Abort()
				continue
			}
			if _, err := tx.Commit(); err != nil {
				continue
			}
			id++
			committed.Add(1)
		}
	}()

	report := func(label string) {
		fmt.Printf("%-28s committed so far: %d\n", label, committed.Load())
	}

	time.Sleep(600 * time.Millisecond)
	report("steady state")

	fmt.Println("\n*** crashing worker 0 (fail-stop) ***")
	cluster.CrashWorker(0)
	time.Sleep(600 * time.Millisecond)
	report("running on survivor")

	fmt.Println("\n*** reviving worker 0 with HARBOR online recovery ***")
	t0 := time.Now()
	stats, err := cluster.RecoverWorker(0)
	if err != nil {
		log.Fatal(err)
	}
	report("back online")
	for _, o := range stats.Objects {
		fmt.Printf("  table %d: phase1 %v | phase2 %v (%d tuples, %d deletes) | phase3 %v | total %v\n",
			o.Table, o.Phase1.Round(time.Microsecond),
			(o.Phase2Update + o.Phase2Insert).Round(time.Microsecond),
			o.Phase2Inserts, o.Phase2Deletes,
			o.Phase3.Round(time.Microsecond), o.Total.Round(time.Microsecond))
	}
	fmt.Printf("  wall-clock recovery: %v (writer never stopped)\n", time.Since(t0).Round(time.Millisecond))

	time.Sleep(400 * time.Millisecond)
	close(stop)
	<-writerDone
	report("\nfinal")

	// Verify: both replicas answer the same count, and a query pinned to
	// the recovered replica matches the cluster view.
	all, err := cluster.Query(1, harbor.Query{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster sees %d sales; verifying replica equivalence...\n", len(all))
	for i := 0; i < cluster.NumWorkers(); i++ {
		n, err := countOnWorker(cluster, i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  worker %d holds %d current rows\n", i, n)
		if n != len(all) {
			log.Fatalf("replica divergence on worker %d", i)
		}
	}
	fmt.Println("replicas are logically identical — recovery verified")
}

// countOnWorker scans a single worker's replica directly (current
// visibility) through the execution engine.
func countOnWorker(cluster *harbor.Cluster, i int) (int, error) {
	w := cluster.Worker(i)
	rows, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: 1, Vis: exec.Current}))
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}
