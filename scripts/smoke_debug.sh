#!/bin/sh
# Smoke-tests the observability endpoint: boots a standalone harbor-worker
# with -debug-addr, fetches /debug/harbor, and fails unless the response is
# well-formed JSON with the expected registry shape (counters/gauges/
# histograms maps plus the tracer's txn list). Used by `make smoke` and the
# CI smoke job.
set -eu

dir=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$dir"
}
trap cleanup EXIT INT TERM

go build -o "$dir/harbor-worker" ./cmd/harbor-worker

"$dir/harbor-worker" -site 1 -dir "$dir/site1" -addr 127.0.0.1:0 \
	-debug-addr 127.0.0.1:0 >"$dir/out.log" 2>&1 &
pid=$!

# The worker prints the bound debug address; wait for it.
url=""
for _ in $(seq 1 100); do
	url=$(sed -n 's|^debug: /debug/harbor on \(http://[^ ]*\)$|\1|p' "$dir/out.log" | head -1)
	[ -n "$url" ] && break
	kill -0 "$pid" 2>/dev/null || { echo "smoke: worker exited early:"; cat "$dir/out.log"; exit 1; }
	sleep 0.1
done
if [ -z "$url" ]; then
	echo "smoke: worker never announced its debug address:"
	cat "$dir/out.log"
	exit 1
fi

fetch() {
	if command -v curl >/dev/null 2>&1; then
		curl -fsS "$1"
	else
		python3 -c 'import sys,urllib.request; sys.stdout.write(urllib.request.urlopen(sys.argv[1], timeout=5).read().decode())' "$1"
	fi
}

fetch "$url" >"$dir/snap.json"

# Malformed or wrongly-shaped output fails the job. jq where available
# (CI runners), python3 otherwise.
if command -v jq >/dev/null 2>&1; then
	jq -e '(.counters | type == "object")
		and (.gauges | type == "object")
		and (.histograms | type == "object")
		and (.txns | type == "array")
		and (.counters | has("worker.commits"))
		and (.counters | has("buffer.evictions"))' "$dir/snap.json" >/dev/null || {
		echo "smoke: /debug/harbor output malformed:"
		cat "$dir/snap.json"
		exit 1
	}
else
	python3 - "$dir/snap.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert isinstance(d["counters"], dict), "counters missing"
assert isinstance(d["gauges"], dict), "gauges missing"
assert isinstance(d["histograms"], dict), "histograms missing"
assert isinstance(d["txns"], list), "txns missing"
assert "worker.commits" in d["counters"], "worker.commits not registered"
assert "buffer.evictions" in d["counters"], "buffer.evictions not registered"
EOF
fi

# The per-txn timeline path must answer too (unknown txn -> empty events).
fetch "$url?txn=1" >"$dir/txn.json"
python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); assert d["txn"] == 1' "$dir/txn.json"

echo "smoke: /debug/harbor OK ($url)"
